"""Tests for repro.api.execution: backends, sharding and streaming.

The acceptance criterion of the execution layer is absolute: every backend
(``serial`` / ``thread`` / ``process``) and the streaming aggregation path
produce **bitwise identical** reports on all three experiment kinds.  The
parity tests below follow the PR-1 fuzz-harness style — seeded cases, exact
(float-equal) table comparison — and the memory test pins the streaming
path's O(chunk) claim with ``tracemalloc``.
"""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np
import pytest

from repro.__main__ import main
from repro.api.config import ConfigError, ExecutionConfig, ExperimentConfig
from repro.api.execution import ProcessBackend, SerialBackend, ThreadBackend, shard_ranges
from repro.api.registry import EXECUTION_BACKENDS, RegistryError
from repro.api.runner import Runner
from repro.core.dataset import MetricsAccumulator, MetricsDataset
from repro.core.pipeline import MetaSegPipeline
from repro.segmentation.datasets import CityscapesLikeDataset
from repro.segmentation.network import SimulatedSegmentationNetwork, mobilenetv2_profile
from repro.segmentation.scene import SceneConfig

TINY_HEIGHT = 48
TINY_WIDTH = 96


# --------------------------------------------------------------- workloads --
def metaseg_payload(seed: int) -> dict:
    return {
        "kind": "metaseg", "seed": seed,
        "data": {"dataset": "cityscapes_like", "n_val": 5,
                 "height": TINY_HEIGHT, "width": TINY_WIDTH},
        "evaluation": {"n_runs": 2},
    }


def timedynamic_payload(seed: int) -> dict:
    return {
        "kind": "timedynamic", "seed": seed,
        "data": {"dataset": "kitti_like", "n_sequences": 2, "n_frames": 5,
                 "labeled_stride": 2, "height": TINY_HEIGHT, "width": TINY_WIDTH},
        "meta_models": {
            "classifiers": ["gradient_boosting"],
            "regressors": ["gradient_boosting"],
            "model_params": {"gradient_boosting": {"n_estimators": 4, "max_depth": 2}},
        },
        "evaluation": {"n_runs": 1, "n_frames_list": [0, 1], "compositions": ["R"]},
    }


def decision_payload(seed: int) -> dict:
    return {
        "kind": "decision", "seed": seed,
        "data": {"dataset": "cityscapes_like", "n_train": 4, "n_val": 4,
                 "height": TINY_HEIGHT, "width": TINY_WIDTH},
    }


PAYLOADS = {
    "metaseg": metaseg_payload,
    "timedynamic": timedynamic_payload,
    "decision": decision_payload,
}

#: Execution-section variants that must all be bitwise identical to serial.
VARIANTS = (
    {"backend": "thread", "workers": 2},
    {"backend": "process", "workers": 2},
    {"backend": "serial", "streaming": True},
    {"backend": "thread", "workers": 2, "streaming": True},
    {"backend": "process", "workers": 2, "streaming": True},
)


def run_with_execution(payload: dict, execution: dict):
    config = ExperimentConfig.from_dict({**payload, "execution": execution})
    return Runner().run(config)


def assert_reports_identical(left, right, context: str):
    assert left.tables == right.tables, f"{context}: tables differ"
    assert left.provenance == right.provenance, f"{context}: provenance differs"


# ------------------------------------------------------------ shard_ranges --
class TestShardRanges:
    def test_balanced_split(self):
        assert shard_ranges(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_shards_than_items(self):
        assert shard_ranges(2, 8) == [(0, 1), (1, 2)]

    def test_single_shard(self):
        assert shard_ranges(5, 1) == [(0, 5)]

    def test_zero_items(self):
        assert shard_ranges(0, 4) == []

    def test_ranges_are_contiguous_and_complete(self):
        for n_items in (1, 7, 16, 33):
            for n_shards in (1, 2, 3, 5, 50):
                ranges = shard_ranges(n_items, n_shards)
                covered = [i for start, stop in ranges for i in range(start, stop)]
                assert covered == list(range(n_items))
                assert all(stop > start for start, stop in ranges)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            shard_ranges(-1, 2)
        with pytest.raises(ValueError):
            shard_ranges(4, 0)


# ----------------------------------------------------------------- parity --
@pytest.fixture(scope="module")
def serial_reports():
    """Serial-backend reference reports, one per experiment kind (seed 3)."""
    return {
        kind: Runner().run(ExperimentConfig.from_dict(make(3)))
        for kind, make in PAYLOADS.items()
    }


class TestBackendParity:
    """process / thread / streaming == serial, bitwise, on all three kinds."""

    @pytest.mark.parametrize("execution", VARIANTS, ids=lambda e: "-".join(
        f"{k}={v}" for k, v in e.items()))
    @pytest.mark.parametrize("kind", sorted(PAYLOADS))
    def test_variant_matches_serial(self, kind, execution, serial_reports):
        report = run_with_execution(PAYLOADS[kind](3), execution)
        assert_reports_identical(report, serial_reports[kind], f"{kind}/{execution}")

    def test_config_echo_reflects_the_variant(self, serial_reports):
        report = run_with_execution(metaseg_payload(3), {"backend": "thread", "workers": 2})
        assert report.config["execution"]["backend"] == "thread"
        assert serial_reports["metaseg"].config["execution"]["backend"] == "serial"

    def test_process_shards_merge_in_index_order(self):
        # 3 shards over 5 images: uneven shard sizes must still merge to the
        # serial image order.
        serial = run_with_execution(metaseg_payload(4), {"backend": "serial"})
        sharded = run_with_execution(
            metaseg_payload(4), {"backend": "process", "workers": 3}
        )
        assert_reports_identical(sharded, serial, "metaseg/3-shards")


@pytest.mark.fuzz
class TestBackendParityFuzz:
    """Extended seeded sweep (select with ``-m fuzz``, run by scripts/ci.sh)."""

    @pytest.mark.parametrize("seed", [1, 9, 23])
    @pytest.mark.parametrize("kind", sorted(PAYLOADS))
    def test_seeded_process_and_streaming_parity(self, kind, seed):
        serial = Runner().run(ExperimentConfig.from_dict(PAYLOADS[kind](seed)))
        for execution in (
            {"backend": "process", "workers": 2},
            {"backend": "thread", "workers": 3},
            {"backend": "serial", "streaming": True},
        ):
            report = run_with_execution(PAYLOADS[kind](seed), execution)
            assert_reports_identical(report, serial, f"{kind}/seed{seed}/{execution}")


# ------------------------------------------------------- backend semantics --
class TestBackendSemantics:
    def test_builtin_backends_registered(self):
        assert {"serial", "thread", "process"} <= set(EXECUTION_BACKENDS.available())

    def test_unknown_backend_fails_fast_at_resolve(self):
        config = ExperimentConfig.from_dict(
            {**metaseg_payload(0), "execution": {"backend": "gpu"}}
        )
        with pytest.raises(RegistryError, match="unknown execution_backends entry 'gpu'"):
            Runner().resolve(config)

    def test_workers_zero_and_one_degenerate_to_serial(self, serial_reports):
        for workers in (0, 1):
            report = run_with_execution(
                metaseg_payload(3), {"backend": "process", "workers": workers}
            )
            assert_reports_identical(report, serial_reports["metaseg"], f"workers={workers}")

    def test_backend_factories_honour_worker_contract(self):
        assert SerialBackend(ExecutionConfig())._pipeline_workers() is None
        assert ThreadBackend(ExecutionConfig(workers=3))._pipeline_workers() == 3
        assert ProcessBackend(ExecutionConfig(workers=5)).default_workers() == 5
        with pytest.raises(ValueError, match="max_workers"):
            SerialBackend(ExecutionConfig(workers=-1))

    def test_explicit_zero_and_one_workers_never_fan_out(self):
        # Explicit 0/1 mean serial — they must NOT fall back to cpu_count.
        for backend_cls in (SerialBackend, ThreadBackend, ProcessBackend):
            for workers in (0, 1):
                assert backend_cls(ExecutionConfig(workers=workers)).default_workers() == 1

    def test_sharded_size_errors_distinguish_capability_from_emptiness(self):
        class NoIndexAccess:
            pass

        with pytest.raises(ValueError, match="use backend 'serial' or 'thread'"):
            ProcessBackend._sharded_workload_size(NoIndexAccess(), "n_val")

    def test_empty_decision_train_split_is_a_config_error_everywhere(self):
        payload = decision_payload(0)
        payload["data"]["n_train"] = 0
        for execution in ({"backend": "serial"}, {"backend": "serial", "streaming": True},
                          {"backend": "process", "workers": 2}):
            with pytest.raises(ValueError, match="data.n_train >= 1"):
                run_with_execution(payload, execution)

    def test_empty_metaseg_val_split_still_a_clear_error(self):
        payload = metaseg_payload(0)
        payload["data"]["n_val"] = 0
        for execution in ({"backend": "serial"}, {"backend": "process", "workers": 2},
                          {"backend": "serial", "streaming": True}):
            with pytest.raises(ValueError, match="n_val >= 1"):
                run_with_execution(payload, execution)


# ----------------------------------------------------- MetricsAccumulator --
class TestMetricsAccumulator:
    def test_fold_matches_concatenate(self, metaseg_pipeline, cityscapes_like):
        samples = cityscapes_like.val_samples()
        chunks = list(metaseg_pipeline.iter_extract_batched(samples, chunk_size=2))
        accumulator = MetricsAccumulator()
        for chunk in chunks:
            accumulator.add(chunk)
        folded = accumulator.result()
        reference = MetricsDataset.concatenate(chunks)
        np.testing.assert_array_equal(folded.features, reference.features)
        np.testing.assert_array_equal(folded.segment_ids, reference.segment_ids)
        np.testing.assert_array_equal(folded.class_ids, reference.class_ids)
        assert list(folded.image_ids) == list(reference.image_ids)
        np.testing.assert_array_equal(folded.target_iou(), reference.target_iou())

    def test_empty_accumulator_rejected(self):
        with pytest.raises(ValueError, match="no chunks"):
            MetricsAccumulator().result()

    def test_mismatched_columns_rejected(self, metrics_dataset):
        accumulator = MetricsAccumulator()
        accumulator.add(metrics_dataset)
        renamed = MetricsDataset(
            features=metrics_dataset.features,
            feature_names=[f"x_{name}" for name in metrics_dataset.feature_names],
            segment_ids=metrics_dataset.segment_ids,
            class_ids=metrics_dataset.class_ids,
            image_ids=metrics_dataset.image_ids,
            iou=metrics_dataset.iou,
        )
        with pytest.raises(ValueError, match="differing feature columns"):
            accumulator.add(renamed)


# ------------------------------------------------------------- peak memory --
class TestStreamingPeakMemory:
    """The streaming path's O(chunk) claim, pinned with tracemalloc."""

    N_VAL = 24
    CHUNK = 4

    def _workload(self):
        dataset = CityscapesLikeDataset(
            n_train=0, n_val=self.N_VAL,
            scene_config=SceneConfig(height=TINY_HEIGHT, width=TINY_WIDTH),
            random_state=11,
        )
        network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=7)
        return dataset, MetaSegPipeline(network)

    def test_streaming_peak_below_batched_peak(self):
        # Warm up allocator caches / lazy imports outside the measurement.
        dataset, pipeline = self._workload()
        pipeline.extract_dataset_batched(dataset.val_samples()[:2])

        gc.collect()
        dataset, pipeline = self._workload()
        tracemalloc.start()
        batched = pipeline.extract_dataset_batched(dataset.val_samples())
        peak_batched = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        gc.collect()
        dataset, pipeline = self._workload()
        tracemalloc.start()
        streamed = pipeline.extract_dataset_streaming(
            dataset.iter_val(cache=False), chunk_size=self.CHUNK
        )
        peak_streaming = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        # Same numbers ...
        np.testing.assert_array_equal(streamed.features, batched.features)
        np.testing.assert_array_equal(streamed.target_iou(), batched.target_iou())
        # ... at measurably lower peak memory: the batched walk holds the
        # full sample list + per-image parts, the streaming walk only one
        # chunk plus the output buffers.  Measured ~0.73x; gated at 0.95x so
        # allocator/platform variance on the small workload cannot flake the
        # tier-1 suite while a real regression (>= 1x) still fails clearly.
        assert peak_streaming < 0.95 * peak_batched, (
            f"streaming peak {peak_streaming} not below batched peak {peak_batched}"
        )


# ------------------------------------------------------------------- CLI --
class TestCliExecutionOverrides:
    def _write(self, tmp_path, payload):
        import json

        path = tmp_path / "config.json"
        path.write_text(json.dumps(payload))
        return path

    def test_backend_and_workers_override_bitwise(self, tmp_path, capsys):
        path = self._write(tmp_path, metaseg_payload(3))
        serial_out = tmp_path / "serial.json"
        sharded_out = tmp_path / "sharded.json"
        assert main(["run", str(path), "--output", str(serial_out)]) == 0
        assert main([
            "run", str(path), "--backend", "process", "--workers", "2",
            "--streaming", "--output", str(sharded_out),
        ]) == 0
        capsys.readouterr()
        import json

        serial = json.loads(serial_out.read_text())
        sharded = json.loads(sharded_out.read_text())
        # Tables and provenance are bitwise equal; only the config echo may
        # differ (it records the requested execution section).
        assert sharded["tables"] == serial["tables"]
        assert sharded["provenance"] == serial["provenance"]
        assert sharded["config"]["execution"]["backend"] == "process"

    def test_no_streaming_overrides_config(self, tmp_path, capsys):
        payload = metaseg_payload(3)
        payload["execution"] = {"backend": "serial", "streaming": True}
        path = self._write(tmp_path, payload)
        out = tmp_path / "report.json"
        assert main(["run", str(path), "--no-streaming", "--output", str(out)]) == 0
        capsys.readouterr()
        import json

        assert json.loads(out.read_text())["config"]["execution"]["streaming"] is False

    def test_unknown_backend_exits_2(self, tmp_path, capsys):
        path = self._write(tmp_path, metaseg_payload(0))
        assert main(["run", str(path), "--backend", "gpu"]) == 2
        assert "unknown execution_backends entry" in capsys.readouterr().err

    def test_negative_workers_exit_2(self, tmp_path, capsys):
        path = self._write(tmp_path, metaseg_payload(0))
        assert main(["run", str(path), "--workers", "-1"]) == 2
        assert "execution: workers" in capsys.readouterr().err

    def test_override_can_fix_the_overridden_field(self, tmp_path, capsys):
        # A bad config value must be fixable by the CLI flag that owns it.
        payload = metaseg_payload(3)
        payload["execution"] = {"workers": -1}
        path = self._write(tmp_path, payload)
        out = tmp_path / "report.json"
        assert main(["run", str(path), "--workers", "2", "--output", str(out)]) == 0
        capsys.readouterr()
        import json

        assert json.loads(out.read_text())["config"]["execution"]["workers"] == 2

    def test_negative_workers_in_config_exit_2(self, tmp_path, capsys):
        payload = metaseg_payload(0)
        payload["execution"] = {"workers": -2}
        path = self._write(tmp_path, payload)
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "invalid config" in err and "execution: workers" in err

    def test_unwritable_output_exits_2(self, tmp_path, capsys):
        path = self._write(tmp_path, metaseg_payload(3))
        # The output path collides with an existing directory: mkdir/write
        # must fail with a one-line diagnostic, not a traceback.
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        assert main(["run", str(path), "--output", str(blocked)]) == 2
        assert "cannot write report" in capsys.readouterr().err
