"""Tests for repro.models.logistic."""

import numpy as np
import pytest

from repro.models.logistic import LogisticRegression, _sigmoid


def _separable_data(rng, n=200):
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
    return x, y


class TestSigmoid:
    def test_range(self):
        z = np.linspace(-50, 50, 101)
        s = _sigmoid(z)
        assert np.all((s >= 0) & (s <= 1))

    def test_symmetry(self):
        z = np.array([-3.0, -1.0, 0.0, 1.0, 3.0])
        np.testing.assert_allclose(_sigmoid(z) + _sigmoid(-z), 1.0)

    def test_no_overflow_for_large_inputs(self):
        assert np.isfinite(_sigmoid(np.array([1000.0, -1000.0]))).all()


class TestLogisticRegression:
    def test_learns_separable_problem(self, rng):
        x, y = _separable_data(rng)
        model = LogisticRegression(max_iter=300).fit(x, y)
        assert model.score(x, y) > 0.95

    def test_probabilities_in_range(self, rng):
        x, y = _separable_data(rng)
        model = LogisticRegression().fit(x, y)
        p = model.predict_proba(x)
        assert np.all((p >= 0) & (p <= 1))

    def test_probability_monotone_in_decision_function(self, rng):
        x, y = _separable_data(rng)
        model = LogisticRegression().fit(x, y)
        scores = model.decision_function(x)
        probs = model.predict_proba(x)
        order = np.argsort(scores)
        assert np.all(np.diff(probs[order]) >= -1e-12)

    def test_penalty_shrinks_weights(self, rng):
        x, y = _separable_data(rng, n=300)
        free = LogisticRegression(penalty=0.0, max_iter=400).fit(x, y)
        penalised = LogisticRegression(penalty=50.0, max_iter=400).fit(x, y)
        assert np.linalg.norm(penalised.coef_) < np.linalg.norm(free.coef_)

    def test_balanced_class_weight_runs(self, rng):
        x = rng.normal(size=(200, 2))
        y = (x[:, 0] > 1.0).astype(int)  # heavily imbalanced
        if y.sum() == 0:
            y[0] = 1
        model = LogisticRegression(class_weight="balanced").fit(x, y)
        assert model.predict_proba(x).shape == (200,)

    def test_threshold_changes_predictions(self, rng):
        x, y = _separable_data(rng)
        model = LogisticRegression().fit(x, y)
        strict = model.predict(x, threshold=0.9).sum()
        lax = model.predict(x, threshold=0.1).sum()
        assert lax >= strict

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogisticRegression(penalty=-1.0)
        with pytest.raises(ValueError):
            LogisticRegression(max_iter=0)
        with pytest.raises(ValueError):
            LogisticRegression(class_weight="weird")

    def test_requires_binary_labels(self, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            LogisticRegression().fit(x, np.arange(10))

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            LogisticRegression().fit(rng.normal(size=(10, 2)), np.zeros(9, dtype=int))

    def test_predict_before_fit(self):
        with pytest.raises(Exception):
            LogisticRegression().predict_proba(np.zeros((2, 2)))

    def test_feature_mismatch_on_predict(self, rng):
        x, y = _separable_data(rng)
        model = LogisticRegression().fit(x, y)
        with pytest.raises(ValueError):
            model.predict_proba(rng.normal(size=(3, 5)))

    def test_deterministic(self, rng):
        x, y = _separable_data(rng)
        a = LogisticRegression().fit(x, y).predict_proba(x)
        b = LogisticRegression().fit(x, y).predict_proba(x)
        np.testing.assert_allclose(a, b)
