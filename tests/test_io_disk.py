"""Tests for the real-data I/O layer (repro.io).

Covers the dependency-free PNG codec (round trips, all five scanline
filters, named rejection of everything outside the 8-bit-grayscale subset),
the ``cityscapes_disk`` substrate and ``softmax_dump`` adapter (lazy walks,
raw→train remapping, fail-fast ConfigError paths), the memmap serving
contract (a large dump is sliced, never materialised — enforced with a
tracemalloc peak bound), and the headline property: an experiment run
against the committed fixture tree is **bitwise identical** to the
in-memory synthetic run it was generated from — under serial, thread and
process backends, streaming mode, and through the result store.
"""

import json
import shutil
import struct
import tracemalloc
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.api.config import ConfigError, ExperimentConfig
from repro.api.registry import DATASETS, NETWORK_PROFILES
from repro.api.runner import Runner
from repro.io.cityscapes import CityscapesDiskDataset, discover_frames, raw_to_train_lut
from repro.io.fixture import disk_config_payload, write_disk_fixture
from repro.io.png import PngError, _chunk, _SIGNATURE, read_png_gray8, write_png_gray8
from repro.io.softmax import SoftmaxDumpNetwork
from repro.segmentation.labels import IGNORE_ID, cityscapes_label_space
from repro.store import ResultStore

#: The committed fixture tree and the parameters it was generated with
#: (scripts/make_disk_fixture.py defaults).
FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "disk"
FIXTURE = dict(seed=7, n_train=2, n_val=4, height=32, width=64)


def synthetic_payload(kind: str = "metaseg") -> dict:
    """The in-memory synthetic config the fixture must reproduce bitwise."""
    return {
        "kind": kind,
        "seed": FIXTURE["seed"],
        "data": {
            "dataset": "cityscapes_like",
            "n_train": FIXTURE["n_train"],
            "n_val": FIXTURE["n_val"],
            "height": FIXTURE["height"],
            "width": FIXTURE["width"],
        },
        "network": {"profile": "mobilenetv2"},
        "evaluation": {"n_runs": 4} if kind == "metaseg" else {},
    }


def disk_payload(kind: str = "metaseg", **execution) -> dict:
    """The equivalent config running the committed on-disk fixture."""
    payload = disk_config_payload(FIXTURE_ROOT, kind=kind, seed=FIXTURE["seed"])
    if kind == "metaseg":
        payload["evaluation"] = {"n_runs": 4}
    if execution:
        payload["execution"] = execution
    return payload


def run(payload: dict):
    return Runner().run(ExperimentConfig.from_dict(payload))


def comparable(report) -> tuple:
    """The bitwise-comparable part of a report: tables + provenance.

    The config echo legitimately differs between the synthetic and the disk
    run (different dataset/network names); every number does not.
    """
    serialised = json.loads(report.to_json())
    return serialised["tables"], serialised["provenance"]


# ------------------------------------------------------------------ PNG codec


class TestPngCodec:
    @pytest.mark.parametrize("shape", [(1, 1), (3, 7), (32, 64), (50, 3)])
    def test_round_trip(self, tmp_path, shape):
        rng = np.random.default_rng(hash(shape) % 2**32)
        image = rng.integers(0, 256, size=shape, dtype=np.uint8)
        path = tmp_path / "x.png"
        write_png_gray8(path, image)
        np.testing.assert_array_equal(read_png_gray8(path), image)

    def test_accepts_non_uint8_integers_in_range(self, tmp_path):
        image = np.arange(12, dtype=np.int64).reshape(3, 4)
        write_png_gray8(tmp_path / "x.png", image)
        np.testing.assert_array_equal(read_png_gray8(tmp_path / "x.png"), image)

    def test_rejects_out_of_range_and_bad_shapes(self, tmp_path):
        with pytest.raises(PngError, match="fit uint8"):
            write_png_gray8(tmp_path / "x.png", np.array([[300]]))
        with pytest.raises(PngError, match="2-D"):
            write_png_gray8(tmp_path / "x.png", np.zeros((2, 2, 3), dtype=np.uint8))

    @pytest.mark.parametrize("filter_type", [0, 1, 2, 3, 4])
    def test_decodes_every_scanline_filter(self, tmp_path, filter_type):
        """Files from standard encoders use adaptive filters; all must decode."""
        rng = np.random.default_rng(41 + filter_type)
        image = rng.integers(0, 256, size=(9, 13), dtype=np.uint8)
        height, width = image.shape
        recon = image.astype(np.int64)
        raw = bytearray()
        for y in range(height):
            line = recon[y]
            prior = recon[y - 1] if y > 0 else np.zeros(width, dtype=np.int64)
            left = np.concatenate(([0], line[:-1]))
            upper_left = np.concatenate(([0], prior[:-1]))
            if filter_type == 0:
                filtered = line
            elif filter_type == 1:
                filtered = line - left
            elif filter_type == 2:
                filtered = line - prior
            elif filter_type == 3:
                filtered = line - (left + prior) // 2
            else:  # Paeth
                p = left + prior - upper_left
                pa, pb, pc = abs(p - left), abs(p - prior), abs(p - upper_left)
                predictor = np.where(
                    (pa <= pb) & (pa <= pc), left, np.where(pb <= pc, prior, upper_left)
                )
                filtered = line - predictor
            raw.append(filter_type)
            raw.extend((filtered % 256).astype(np.uint8).tobytes())
        ihdr = struct.pack(">IIBBBBB", width, height, 8, 0, 0, 0, 0)
        path = tmp_path / f"f{filter_type}.png"
        path.write_bytes(
            _SIGNATURE
            + _chunk(b"IHDR", ihdr)
            + _chunk(b"IDAT", zlib.compress(bytes(raw)))
            + _chunk(b"IEND", b"")
        )
        np.testing.assert_array_equal(read_png_gray8(path), image)

    def test_rejects_non_png_truncated_and_unsupported(self, tmp_path):
        not_png = tmp_path / "not.png"
        not_png.write_bytes(b"definitely not a png")
        with pytest.raises(PngError, match="signature"):
            read_png_gray8(not_png)

        good = tmp_path / "good.png"
        write_png_gray8(good, np.zeros((4, 4), dtype=np.uint8))
        truncated = tmp_path / "trunc.png"
        truncated.write_bytes(good.read_bytes()[:-20])
        with pytest.raises(PngError, match="truncated"):
            read_png_gray8(truncated)

        rgb = tmp_path / "rgb.png"
        ihdr = struct.pack(">IIBBBBB", 2, 2, 8, 2, 0, 0, 0)  # color type 2 = RGB
        rgb.write_bytes(
            _SIGNATURE + _chunk(b"IHDR", ihdr)
            + _chunk(b"IDAT", zlib.compress(b"\x00" * 14)) + _chunk(b"IEND", b"")
        )
        with pytest.raises(PngError, match="8-bit grayscale"):
            read_png_gray8(rgb)

        corrupt = tmp_path / "corrupt.png"
        ihdr = struct.pack(">IIBBBBB", 2, 2, 8, 0, 0, 0, 0)
        corrupt.write_bytes(
            _SIGNATURE + _chunk(b"IHDR", ihdr)
            + _chunk(b"IDAT", b"\xff\xfe\xfd") + _chunk(b"IEND", b"")
        )
        with pytest.raises(PngError, match="corrupt"):
            read_png_gray8(corrupt)


# ------------------------------------------------------- raw-id label mapping


class TestRawIdMapping:
    def test_round_trip_through_disk_encoding(self, label_space):
        lut = raw_to_train_lut(label_space)
        train_ids = np.array([IGNORE_ID] + [s.train_id for s in label_space])
        raw = np.array([label_space.train_id_to_raw(t) for t in train_ids])
        np.testing.assert_array_equal(lut[raw], train_ids)

    def test_void_raw_ids_decode_to_ignore(self, label_space):
        lut = raw_to_train_lut(label_space)
        mapped = set(label_space.raw_id_map())
        void = [r for r in range(256) if r not in mapped]
        assert (lut[void] == IGNORE_ID).all()
        assert len(mapped) == label_space.n_classes


# ----------------------------------------------------------- disk substrates


class TestCityscapesDiskDataset:
    def test_walks_committed_fixture(self):
        dataset = CityscapesDiskDataset(FIXTURE_ROOT)
        assert dataset.n_train == FIXTURE["n_train"]
        assert dataset.n_val == FIXTURE["n_val"]
        assert dataset.n_classes == 19
        assert dataset.frame_ids("val") == [f"val_{i:04d}" for i in range(4)]
        sample = dataset.val_sample(0)
        assert sample.image_id == "val_0000"
        assert sample.labels.shape == (FIXTURE["height"], FIXTURE["width"])
        assert sample.labels.min() >= IGNORE_ID and sample.labels.max() < 19

    def test_streaming_access_is_bitwise_equal_to_cached(self):
        dataset = CityscapesDiskDataset(FIXTURE_ROOT)
        cached = dataset.val_sample(2, cache=True)
        fresh = CityscapesDiskDataset(FIXTURE_ROOT).val_sample(2, cache=False)
        np.testing.assert_array_equal(cached.labels, fresh.labels)

    def test_label_only_tree_is_accepted(self, tmp_path):
        """A gtFine dump without leftImg8bit images is a valid dataset."""
        shutil.copytree(FIXTURE_ROOT / "gtFine", tmp_path / "gtFine")
        dataset = CityscapesDiskDataset(tmp_path)
        assert dataset.n_val == FIXTURE["n_val"]
        reference = CityscapesDiskDataset(FIXTURE_ROOT)
        np.testing.assert_array_equal(
            dataset.val_sample(1).labels, reference.val_sample(1).labels
        )

    def test_missing_root_and_empty_split_fail_fast(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            CityscapesDiskDataset(tmp_path / "nowhere")
        (tmp_path / "gtFine" / "val").mkdir(parents=True)
        with pytest.raises(ConfigError, match="no frames"):
            CityscapesDiskDataset(tmp_path)

    def test_image_without_label_names_the_frame(self, tmp_path):
        shutil.copytree(FIXTURE_ROOT / "leftImg8bit", tmp_path / "leftImg8bit")
        shutil.copytree(FIXTURE_ROOT / "gtFine", tmp_path / "gtFine")
        (tmp_path / "gtFine" / "val" / "val" / "val_0002_gtFine_labelIds.png").unlink()
        with pytest.raises(ConfigError, match="val_0002"):
            CityscapesDiskDataset(tmp_path)

    def test_corrupt_label_map_names_the_frame(self, tmp_path):
        shutil.copytree(FIXTURE_ROOT / "gtFine", tmp_path / "gtFine")
        bad = tmp_path / "gtFine" / "val" / "val" / "val_0001_gtFine_labelIds.png"
        bad.write_bytes(b"garbage")
        dataset = CityscapesDiskDataset(tmp_path)
        with pytest.raises(ConfigError, match="val_0001"):
            dataset.val_sample(1)

    def test_builder_requires_root(self):
        config = ExperimentConfig.from_dict(
            {"kind": "metaseg", "data": {"dataset": "cityscapes_disk"}}
        )
        with pytest.raises(ConfigError, match="data.root"):
            DATASETS.get("cityscapes_disk")(config.data, 0)

    def test_registered(self):
        assert "cityscapes_disk" in DATASETS
        assert "softmax_dump" in NETWORK_PROFILES


class TestSoftmaxDumpNetwork:
    def test_serves_committed_fixture(self):
        network = SoftmaxDumpNetwork(FIXTURE_ROOT / "softmax")
        assert network.profile.name == "mobilenetv2"
        assert network.n_classes == 19
        assert network.frame_ids() == [f"val_{i:04d}" for i in range(4)]
        gt = CityscapesDiskDataset(FIXTURE_ROOT).val_sample(0).labels
        probs = network.predict_probabilities(gt, index=0)
        assert probs.shape == (FIXTURE["height"], FIXTURE["width"], 19)
        assert isinstance(probs, np.memmap)
        np.testing.assert_allclose(np.asarray(probs).sum(axis=2), 1.0, atol=1e-9)

    def test_check_dataset_passes_on_matching_tree(self):
        network = SoftmaxDumpNetwork(FIXTURE_ROOT / "softmax")
        network.check_dataset(CityscapesDiskDataset(FIXTURE_ROOT))

    def test_frame_mismatch_fails_at_check(self, tmp_path):
        dump_root = tmp_path / "softmax"
        shutil.copytree(FIXTURE_ROOT / "softmax", dump_root)
        (dump_root / "val" / "val" / "val_0003_softmax.npy").unlink()
        network = SoftmaxDumpNetwork(dump_root)
        with pytest.raises(ConfigError, match="do not match"):
            network.check_dataset(CityscapesDiskDataset(FIXTURE_ROOT))

    def test_runner_resolve_rejects_frame_mismatch(self, tmp_path):
        dump_root = tmp_path / "softmax"
        shutil.copytree(FIXTURE_ROOT / "softmax", dump_root)
        (dump_root / "val" / "val" / "val_0000_softmax.npy").unlink()
        payload = disk_payload()
        payload["network"]["dump_root"] = str(dump_root)
        with pytest.raises(ConfigError, match="do not match"):
            Runner().resolve(ExperimentConfig.from_dict(payload))

    def test_n_classes_mismatch_fails_fast(self, tmp_path):
        dump_root = tmp_path / "softmax"
        shutil.copytree(FIXTURE_ROOT / "softmax", dump_root)
        manifest = json.loads((dump_root / "manifest.json").read_text())
        manifest["n_classes"] = 5
        (dump_root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ConfigError, match="5 classes"):
            SoftmaxDumpNetwork(dump_root)

    def test_missing_root_empty_split_and_bad_manifest(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            SoftmaxDumpNetwork(tmp_path / "nowhere")
        empty = tmp_path / "empty"
        (empty / "val").mkdir(parents=True)
        with pytest.raises(ConfigError, match="no softmax dumps"):
            SoftmaxDumpNetwork(empty)
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text("{not json")
        with pytest.raises(ConfigError, match="manifest"):
            SoftmaxDumpNetwork(bad)

    def test_corrupt_and_misshapen_dumps_name_the_frame(self, tmp_path):
        dump_root = tmp_path / "softmax"
        shutil.copytree(FIXTURE_ROOT / "softmax", dump_root)
        (dump_root / "val" / "val" / "val_0001_softmax.npy").write_bytes(b"not npy")
        network = SoftmaxDumpNetwork(dump_root)
        gt = np.zeros((FIXTURE["height"], FIXTURE["width"]), dtype=np.int64)
        with pytest.raises(ConfigError, match="val_0001"):
            network.predict_probabilities(gt, index=1)
        with pytest.raises(ConfigError, match="val_0000"):
            network.predict_probabilities(np.zeros((8, 8), dtype=np.int64), index=0)
        with pytest.raises(ConfigError, match="outside the dumped range"):
            network.predict_probabilities(gt, index=99)

    def test_adapter_factory_requires_dump_root(self):
        config = ExperimentConfig.from_dict(
            {"kind": "metaseg", "network": {"profile": "softmax_dump"}}
        )
        with pytest.raises(ConfigError, match="dump_root"):
            NETWORK_PROFILES.get("softmax_dump")(config.network, 0)

    def test_runner_rejects_overrides_and_timedynamic_for_adapters(self):
        payload = disk_payload()
        payload["network"]["overrides"] = {"noise_scale": 0.5}
        with pytest.raises(ValueError, match="overrides"):
            Runner().resolve(ExperimentConfig.from_dict(payload))
        with pytest.raises(ValueError, match="time-dynamic"):
            Runner().resolve(
                ExperimentConfig.from_dict(
                    {
                        "kind": "timedynamic",
                        "data": {"dataset": "kitti_like"},
                        "network": {
                            "profile": "softmax_dump",
                            "dump_root": str(FIXTURE_ROOT / "softmax"),
                        },
                    }
                )
            )


# ----------------------------------------------------- memmap non-materialisation


class TestMemmapServing:
    HEIGHT, WIDTH, N_CLASSES = 256, 512, 19

    @pytest.fixture(scope="class")
    def big_dump(self, tmp_path_factory):
        """A ~20 MB float64 dump — far larger than the allowed peak."""
        root = tmp_path_factory.mktemp("bigdump")
        frame_dir = root / "val" / "city"
        frame_dir.mkdir(parents=True)
        field = np.full(
            (self.HEIGHT, self.WIDTH, self.N_CLASSES), 1.0 / self.N_CLASSES
        )
        np.save(frame_dir / "frame_softmax.npy", field)
        (root / "manifest.json").write_text(
            json.dumps({"format": "npy", "n_classes": self.N_CLASSES, "split": "val"})
        )
        return root

    def test_memmap_peak_is_a_fraction_of_the_field(self, big_dump):
        """Serving + row-slicing a big dump must not materialise the field."""
        field_bytes = self.HEIGHT * self.WIDTH * self.N_CLASSES * 8
        gt = np.zeros((self.HEIGHT, self.WIDTH), dtype=np.int64)
        network = SoftmaxDumpNetwork(big_dump, mmap=True)
        tracemalloc.start()
        probs = network.predict_probabilities(gt, index=0)
        row_mass = probs[:, :, 0].sum()  # one-class slice: H*W, not H*W*C
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert isinstance(probs, np.memmap)
        assert row_mass == pytest.approx(self.HEIGHT * self.WIDTH / self.N_CLASSES)
        assert peak < field_bytes / 4, (
            f"peak {peak} bytes suggests the {field_bytes}-byte field was "
            f"materialised despite mmap"
        )

    def test_materialised_counter_check(self, big_dump):
        """With mmap disabled the same access *does* allocate the field —
        proving the tracemalloc gate actually measures what it claims."""
        field_bytes = self.HEIGHT * self.WIDTH * self.N_CLASSES * 8
        gt = np.zeros((self.HEIGHT, self.WIDTH), dtype=np.int64)
        network = SoftmaxDumpNetwork(big_dump, mmap=False)
        tracemalloc.start()
        probs = network.predict_probabilities(gt, index=0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert not isinstance(probs, np.memmap)
        assert peak >= field_bytes


# ------------------------------------------------------------ bitwise parity


@pytest.fixture(scope="module")
def synthetic_metaseg_report():
    return run(synthetic_payload("metaseg"))


class TestFixtureParity:
    """The committed fixture reproduces the synthetic run bit for bit."""

    def test_fixture_regenerates_bitwise_identically(self, tmp_path):
        """Guards the committed tree against silent generator drift."""
        write_disk_fixture(tmp_path, **FIXTURE)
        committed = sorted(
            p.relative_to(FIXTURE_ROOT) for p in FIXTURE_ROOT.rglob("*") if p.is_file()
        )
        regenerated = sorted(
            p.relative_to(tmp_path) for p in tmp_path.rglob("*") if p.is_file()
        )
        assert committed == regenerated
        for rel in committed:
            assert (tmp_path / rel).read_bytes() == (FIXTURE_ROOT / rel).read_bytes(), rel

    def test_metaseg_serial(self, synthetic_metaseg_report):
        assert comparable(run(disk_payload())) == comparable(synthetic_metaseg_report)

    @pytest.mark.parametrize(
        "execution",
        [
            {"backend": "process", "workers": 2},
            {"backend": "thread", "workers": 2},
            {"backend": "serial", "streaming": True},
        ],
        ids=["process", "thread", "streaming"],
    )
    def test_metaseg_backends(self, synthetic_metaseg_report, execution):
        assert comparable(run(disk_payload(**execution))) == comparable(
            synthetic_metaseg_report
        )

    def test_decision_kind(self):
        assert comparable(run(disk_payload("decision"))) == comparable(
            run(synthetic_payload("decision"))
        )

    def test_npz_dump_format_matches_npy(self, tmp_path, synthetic_metaseg_report):
        write_disk_fixture(tmp_path, dump_format="npz", **FIXTURE)
        payload = disk_payload()
        payload["data"]["root"] = str(tmp_path)
        payload["network"]["dump_root"] = str(tmp_path / "softmax")
        assert comparable(run(payload)) == comparable(synthetic_metaseg_report)

    def test_mmap_flag_is_bit_neutral(self, synthetic_metaseg_report):
        payload = disk_payload()
        payload["network"]["mmap"] = False
        assert comparable(run(payload)) == comparable(synthetic_metaseg_report)

    def test_raw_samples_match(self):
        """Dataset-level parity: every split, every frame, bit for bit."""
        from repro.segmentation.datasets import CityscapesLikeDataset
        from repro.segmentation.scene import SceneConfig

        disk = CityscapesDiskDataset(FIXTURE_ROOT)
        synth = CityscapesLikeDataset(
            n_train=FIXTURE["n_train"],
            n_val=FIXTURE["n_val"],
            scene_config=SceneConfig(height=FIXTURE["height"], width=FIXTURE["width"]),
            random_state=FIXTURE["seed"],  # derived data seed == experiment seed
        )
        for disk_s, synth_s in zip(disk.val_samples(), synth.val_samples()):
            assert disk_s.image_id == synth_s.image_id
            np.testing.assert_array_equal(disk_s.labels, synth_s.labels)
        for disk_s, synth_s in zip(disk.train_samples(), synth.train_samples()):
            assert disk_s.image_id == synth_s.image_id
            np.testing.assert_array_equal(disk_s.labels, synth_s.labels)


# ------------------------------------------------- store + process composition


class TestStoreComposition:
    def test_process_backend_with_store_cache(self, tmp_path, synthetic_metaseg_report):
        store = ResultStore(tmp_path / "cache")
        runner = Runner(store=store)
        payload = disk_payload(backend="process", workers=2)
        cold = runner.run(ExperimentConfig.from_dict(payload))
        assert cold.cache["hit"] is False
        assert cold.cache["shards"]["misses"] > 0
        warm = runner.run(ExperimentConfig.from_dict(payload))
        assert warm.cache["hit"] is True
        assert cold.to_json() == warm.to_json()
        assert comparable(cold) == comparable(synthetic_metaseg_report)

    def test_dump_root_enters_shard_keys(self, tmp_path):
        from repro.store import shard_key

        base = ExperimentConfig.from_dict(disk_payload()).to_dict()
        moved = json.loads(json.dumps(base))
        moved["network"]["dump_root"] = str(tmp_path / "elsewhere")
        assert shard_key(base, 0, 2) != shard_key(moved, 0, 2)
        neutral = json.loads(json.dumps(base))
        neutral["network"]["mmap"] = False
        assert shard_key(neutral, 0, 2) == shard_key(base, 0, 2)


# ----------------------------------------------------------- discovery helper


class TestDiscoverFrames:
    def test_missing_split_raises(self):
        with pytest.raises(ConfigError, match="test_split"):
            discover_frames(FIXTURE_ROOT, "test_split")

    def test_orders_by_city_then_frame(self, tmp_path):
        label_dir = tmp_path / "gtFine" / "val"
        for city, frame in [("b_city", "x2"), ("a_city", "z9"), ("b_city", "a1")]:
            d = label_dir / city
            d.mkdir(parents=True, exist_ok=True)
            write_png_gray8(
                d / f"{frame}_gtFine_labelIds.png", np.zeros((2, 2), dtype=np.uint8)
            )
        frames = discover_frames(tmp_path, "val")
        assert [(f.city, f.frame_id) for f in frames] == [
            ("a_city", "z9"), ("b_city", "a1"), ("b_city", "x2")
        ]
