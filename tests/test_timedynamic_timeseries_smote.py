"""Tests for repro.timedynamic.time_series, smote, pseudo_labels and compositions."""

import numpy as np
import pytest

from repro.core.segments import extract_segments
from repro.segmentation.datasets import global_frame_index
from repro.timedynamic.compositions import COMPOSITIONS, assemble_composition, composition_sizes
from repro.timedynamic.pseudo_labels import (
    agreement_rate,
    pseudo_ground_truth_iou,
    pseudo_ground_truth_labels,
)
from repro.timedynamic.smote import smote_regression, target_relevance
from repro.timedynamic.time_series import (
    DEFAULT_BASE_FEATURES,
    TimeSeriesBuilder,
    build_time_series_dataset,
    time_series_feature_names,
)


@pytest.fixture(scope="module")
def processed_sequence(kitti_like, mobilenet_network, xception_network):
    """One processed sequence with real + pseudo targets and tracking."""
    builder = TimeSeriesBuilder()
    samples = kitti_like.samples(0)
    probability_fields = []
    real_gt = []
    pseudo_gt = []
    for sample in samples:
        frame_id = global_frame_index(0, sample.frame_index, kitti_like.n_frames_per_sequence)
        probability_fields.append(
            mobilenet_network.predict_probabilities(sample.labels, index=frame_id)
        )
        real_gt.append(sample.labels if sample.has_ground_truth else None)
        pseudo_gt.append(
            None if sample.has_ground_truth
            else xception_network.predict_labels(sample.labels, index=frame_id)
        )
    return builder.process_sequence(probability_fields, real_gt, pseudo_gt, sequence_id=0)


class TestTimeSeriesBuilder:
    def test_frames_processed(self, processed_sequence, kitti_like):
        assert processed_sequence.n_frames == kitti_like.n_frames_per_sequence
        assert len(processed_sequence.track_assignments) == processed_sequence.n_frames

    def test_real_gt_flags(self, processed_sequence, kitti_like):
        labeled = set(kitti_like.labeled_frame_indices())
        for frame_index, available in enumerate(processed_sequence.real_iou_available):
            assert available == (frame_index in labeled)

    def test_pseudo_iou_only_for_unlabeled(self, processed_sequence):
        for available, pseudo in zip(
            processed_sequence.real_iou_available, processed_sequence.pseudo_iou
        ):
            if available:
                assert pseudo is None
            else:
                assert pseudo is not None
                assert np.all((pseudo >= 0) & (pseudo <= 1))

    def test_misaligned_inputs_raise(self):
        builder = TimeSeriesBuilder()
        with pytest.raises(ValueError):
            builder.process_sequence([], [])
        probs = np.full((4, 4, 19), 1 / 19)
        with pytest.raises(ValueError):
            builder.process_sequence([probs], [None, None])


class TestBuildTimeSeriesDataset:
    def test_feature_names_and_count(self):
        names = time_series_feature_names(["a", "b"], 2)
        assert names == ["a_t0", "b_t0", "a_t-1", "b_t-1", "a_t-2", "b_t-2", "observed_history"]

    def test_single_frame_dataset(self, processed_sequence):
        dataset = build_time_series_dataset([processed_sequence], n_previous=0, target="real")
        assert dataset.n_features == len(DEFAULT_BASE_FEATURES) + 1
        assert dataset.has_targets

    def test_history_extends_features(self, processed_sequence):
        short = build_time_series_dataset([processed_sequence], n_previous=0, target="real")
        long = build_time_series_dataset([processed_sequence], n_previous=3, target="real")
        assert len(short) == len(long)
        assert long.n_features == 4 * len(DEFAULT_BASE_FEATURES) + 1

    def test_observed_history_bounded(self, processed_sequence):
        dataset = build_time_series_dataset([processed_sequence], n_previous=4, target="real")
        observed = dataset.feature("observed_history")
        assert observed.min() >= 0
        assert observed.max() <= 4

    def test_pseudo_target_rows_only_for_unlabeled_frames(self, processed_sequence, kitti_like):
        dataset = build_time_series_dataset([processed_sequence], n_previous=0, target="pseudo")
        labeled = set(kitti_like.labeled_frame_indices())
        for image_id in np.unique(dataset.image_ids):
            frame_index = int(str(image_id).split("frame")[1])
            assert frame_index not in labeled

    def test_invalid_arguments(self, processed_sequence):
        with pytest.raises(ValueError):
            build_time_series_dataset([processed_sequence], n_previous=-1)
        with pytest.raises(ValueError):
            build_time_series_dataset([processed_sequence], n_previous=0, target="imaginary")


class TestSmote:
    def test_relevance_extremes_highest(self):
        targets = np.array([0.0, 0.5, 0.5, 0.5, 1.0])
        relevance = target_relevance(targets)
        assert relevance[0] == relevance[-1] == 1.0
        assert relevance[1] < 1.0

    def test_synthetic_count_and_shape(self, rng):
        features = rng.normal(size=(40, 5))
        targets = rng.uniform(size=40)
        synth_x, synth_y = smote_regression(features, targets, n_synthetic=25, random_state=0)
        assert synth_x.shape == (25, 5)
        assert synth_y.shape == (25,)

    def test_zero_synthetic(self, rng):
        synth_x, synth_y = smote_regression(rng.normal(size=(10, 2)), rng.uniform(size=10), 0)
        assert synth_x.shape == (0, 2) and synth_y.shape == (0,)

    def test_synthetic_values_within_convex_hull_per_feature(self, rng):
        features = rng.uniform(-1, 1, size=(50, 3))
        targets = rng.uniform(size=50)
        synth_x, synth_y = smote_regression(features, targets, n_synthetic=100, random_state=1)
        for column in range(3):
            assert synth_x[:, column].min() >= features[:, column].min() - 1e-9
            assert synth_x[:, column].max() <= features[:, column].max() + 1e-9
        assert synth_y.min() >= targets.min() - 1e-9
        assert synth_y.max() <= targets.max() + 1e-9

    def test_deterministic(self, rng):
        features = rng.normal(size=(30, 4))
        targets = rng.uniform(size=30)
        a = smote_regression(features, targets, 10, random_state=3)
        b = smote_regression(features, targets, 10, random_state=3)
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])

    def test_invalid_arguments(self, rng):
        features = rng.normal(size=(10, 2))
        targets = rng.uniform(size=10)
        with pytest.raises(ValueError):
            smote_regression(features, targets, -1)
        with pytest.raises(ValueError):
            smote_regression(features, targets, 5, k_neighbors=0)
        with pytest.raises(ValueError):
            smote_regression(features, targets, 5, relevance_threshold=1.5)
        with pytest.raises(ValueError):
            smote_regression(features[:1], targets[:1], 5)


class TestPseudoLabels:
    def test_pseudo_labels_close_to_gt(self, xception_network, scene):
        pseudo = pseudo_ground_truth_labels(xception_network, scene.labels, index=0)
        assert agreement_rate(pseudo, scene.labels) > 0.7

    def test_pseudo_iou_aligned_with_segments(self, mobilenet_network, xception_network, scene):
        probs = mobilenet_network.predict_probabilities(scene.labels, index=0)
        prediction = extract_segments(np.argmax(probs, axis=2))
        pseudo = pseudo_ground_truth_labels(xception_network, scene.labels, index=0)
        iou = pseudo_ground_truth_iou(prediction, pseudo)
        assert iou.shape == (prediction.n_segments,)
        assert np.all((iou >= 0) & (iou <= 1))

    def test_agreement_rate_none_without_gt(self, xception_network, scene):
        pseudo = pseudo_ground_truth_labels(xception_network, scene.labels, index=0)
        assert agreement_rate(pseudo, None) is None


class TestCompositions:
    @pytest.fixture(scope="class")
    def real_and_pseudo(self, processed_sequence):
        real = build_time_series_dataset([processed_sequence], n_previous=1, target="real")
        pseudo = build_time_series_dataset([processed_sequence], n_previous=1, target="pseudo")
        return real, pseudo

    def test_all_compositions_buildable(self, real_and_pseudo):
        real, pseudo = real_and_pseudo
        for name in COMPOSITIONS:
            training = assemble_composition(name, real, pseudo, random_state=0)
            assert len(training) > 0
            assert training.extra["composition"] == name

    def test_composition_sizes_match(self, real_and_pseudo):
        real, pseudo = real_and_pseudo
        sizes = composition_sizes(real, pseudo, augmentation_factor=1.0)
        for name in COMPOSITIONS:
            training = assemble_composition(
                name, real, pseudo, augmentation_factor=1.0, random_state=0
            )
            assert len(training) == sizes[name]

    def test_r_composition_is_pure_real(self, real_and_pseudo):
        real, pseudo = real_and_pseudo
        training = assemble_composition("R", real, pseudo, random_state=0)
        assert len(training) == len(real)

    def test_augmented_rows_flagged(self, real_and_pseudo):
        real, pseudo = real_and_pseudo
        training = assemble_composition("RA", real, pseudo, augmentation_factor=0.5, random_state=0)
        synthetic_rows = [iid for iid in training.image_ids if iid == "smote"]
        assert len(synthetic_rows) == int(round(0.5 * len(real)))

    def test_pseudo_required(self, real_and_pseudo):
        real, _ = real_and_pseudo
        with pytest.raises(ValueError):
            assemble_composition("RP", real, None)

    def test_unknown_composition(self, real_and_pseudo):
        real, pseudo = real_and_pseudo
        with pytest.raises(ValueError):
            assemble_composition("RAPX", real, pseudo)
