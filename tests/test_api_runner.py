"""Tests for repro.api.runner and the ``python -m repro`` CLI.

Covers the unified Runner on all three experiment kinds, the single-seed
determinism contract (bitwise-identical ``to_json`` for equal configs), and
bitwise parity between the Runner path and the equivalent direct pipeline
calls.
"""

import json

import pytest

from repro.__main__ import main
from repro.api.config import (
    DataConfig,
    EvalConfig,
    ExperimentConfig,
    ExtractionConfig,
    MetaModelConfig,
    NetworkConfig,
)
from repro.api.runner import ExperimentReport, Runner, derived_seeds, run_experiment
from repro.core.pipeline import MetaSegPipeline
from repro.decision.pipeline import DecisionRuleComparison
from repro.segmentation.datasets import CityscapesLikeDataset
from repro.segmentation.network import SimulatedSegmentationNetwork, mobilenetv2_profile
from repro.segmentation.scene import SceneConfig

TINY_HEIGHT = 48
TINY_WIDTH = 96


def metaseg_config(seed: int = 9, max_workers=None) -> ExperimentConfig:
    return ExperimentConfig(
        kind="metaseg",
        name="tiny",
        seed=seed,
        data=DataConfig(dataset="cityscapes_like", n_val=4,
                        height=TINY_HEIGHT, width=TINY_WIDTH),
        extraction=ExtractionConfig(max_workers=max_workers),
        evaluation=EvalConfig(n_runs=2),
    )


def timedynamic_config(seed: int = 9) -> ExperimentConfig:
    return ExperimentConfig(
        kind="timedynamic",
        seed=seed,
        data=DataConfig(dataset="kitti_like", n_sequences=2, n_frames=6,
                        labeled_stride=2, height=TINY_HEIGHT, width=TINY_WIDTH),
        meta_models=MetaModelConfig(
            classifiers=["gradient_boosting"],
            regressors=["gradient_boosting"],
            classification_penalty=1e-3,
            regression_penalty=1e-3,
            model_params={"gradient_boosting": {"n_estimators": 8, "max_depth": 2,
                                                "max_features": "sqrt"}},
        ),
        evaluation=EvalConfig(n_runs=1, n_frames_list=[0, 1], compositions=["R"]),
    )


def decision_config(seed: int = 9) -> ExperimentConfig:
    return ExperimentConfig(
        kind="decision",
        seed=seed,
        data=DataConfig(dataset="cityscapes_like", n_train=4, n_val=3,
                        height=TINY_HEIGHT, width=TINY_WIDTH),
        evaluation=EvalConfig(rules=["bayes", "ml"]),
    )


@pytest.fixture(scope="module")
def metaseg_report():
    return Runner().run(metaseg_config())


@pytest.fixture(scope="module")
def timedynamic_report():
    return Runner().run(timedynamic_config())


@pytest.fixture(scope="module")
def decision_report():
    return Runner().run(decision_config())


class TestRunnerMetaseg:
    def test_report_shape(self, metaseg_report):
        assert metaseg_report.kind == "metaseg"
        assert metaseg_report.seed == 9
        assert set(metaseg_report.tables) == {"classification", "regression"}
        assert metaseg_report.provenance["n_segments"] > 0
        assert {"resolve", "extract", "evaluate", "total"} <= set(metaseg_report.timings)

    def test_expected_variants_present(self, metaseg_report):
        variants = {row["variant"] for row in metaseg_report.table("classification")}
        assert variants == {"logistic_penalized", "logistic_unpenalized",
                            "entropy_only", "naive"}
        regression_variants = {row["variant"] for row in metaseg_report.table("regression")}
        assert regression_variants == {"linear_all_metrics", "entropy_only"}

    def test_config_echoed(self, metaseg_report):
        assert metaseg_report.config == metaseg_config().to_dict()

    def test_unknown_table_rejected(self, metaseg_report):
        with pytest.raises(KeyError, match="no table 'rules'"):
            metaseg_report.table("rules")

    def test_bitwise_parity_with_direct_pipeline(self, metaseg_report):
        """The acceptance criterion: Runner == direct MetaSegPipeline, bitwise."""
        config = metaseg_config()
        seeds = derived_seeds(config.seed)
        dataset = CityscapesLikeDataset(
            n_train=0, n_val=4,
            scene_config=SceneConfig(height=TINY_HEIGHT, width=TINY_WIDTH),
            random_state=seeds.data,
        )
        network = SimulatedSegmentationNetwork(
            mobilenetv2_profile(), random_state=seeds.network
        )
        pipeline = MetaSegPipeline(network)
        metrics = pipeline.extract_dataset(dataset.val_samples())
        result = pipeline.run_table1_protocol(
            metrics, n_runs=2, random_state=seeds.protocol
        )
        for row in metaseg_report.table("classification"):
            if row["variant"] == "naive":
                assert row["mean"] == result.naive_accuracy
                continue
            mean, std = result.classification[row["variant"]][row["metric"]]
            assert row["mean"] == mean and row["std"] == std
        for row in metaseg_report.table("regression"):
            mean, std = result.regression[row["variant"]][row["metric"]]
            assert row["mean"] == mean and row["std"] == std

    def test_parallel_extraction_bit_identical(self, metaseg_report):
        # Only the config echo may differ; tables and provenance are bitwise
        # equal because parallel extraction is order-preserving.
        parallel = Runner().run(metaseg_config(max_workers=4))
        assert parallel.tables == metaseg_report.tables
        assert parallel.provenance == metaseg_report.provenance

    def test_feature_group_restriction_runs(self):
        config = metaseg_config()
        config.meta_models.feature_group = "dispersion"
        report = Runner().run(config)
        assert report.provenance["n_segments"] > 0

    def test_model_params_reach_the_models(self):
        config = metaseg_config()
        config.meta_models.classifiers = ["gradient_boosting"]
        config.meta_models.regressors = ["gradient_boosting"]
        config.meta_models.model_params = {
            "gradient_boosting": {"n_estimators": 3, "max_depth": 1}
        }
        small = Runner().run(config)
        config.meta_models.model_params = {}
        defaults = Runner().run(config)
        # Shrinking the ensemble must change the fitted models' numbers.
        assert small.tables != defaults.tables


class TestCustomRegistrations:
    """The extension contract: registered components run end to end."""

    def test_custom_classifier_factory_runs_through_runner(self):
        from repro.api.registry import META_CLASSIFIERS, META_REGRESSORS
        from repro.core.meta_classification import MetaClassifier
        from repro.core.meta_regression import MetaRegressor

        @META_CLASSIFIERS.register("stub_logistic")
        def stub_classifier(**kwargs) -> MetaClassifier:
            """Logistic family under a custom name."""
            return MetaClassifier(method="logistic", **kwargs)

        @META_REGRESSORS.register("stub_linear")
        def stub_regressor(**kwargs) -> MetaRegressor:
            """Linear family under a custom name."""
            return MetaRegressor(method="linear", **kwargs)

        try:
            config = metaseg_config()
            config.meta_models.classifiers = ["stub_logistic"]
            config.meta_models.regressors = ["stub_linear"]
            report = Runner().run(config)
            variants = {row["variant"] for row in report.table("classification")}
            assert {"stub_logistic_penalized", "stub_logistic_unpenalized"} <= variants
            assert {row["variant"] for row in report.table("regression")} == {
                "stub_linear_all_metrics", "entropy_only"
            }
        finally:
            META_CLASSIFIERS._entries.pop("stub_logistic")
            META_REGRESSORS._entries.pop("stub_linear")

    def test_custom_decision_rule_runs_through_runner(self):
        import numpy as np

        from repro.api.registry import DECISION_RULES

        @DECISION_RULES.register("stub_argmax")
        def stub_argmax(probs, priors=None, strength=1.0):
            """Plain argmax under a custom name."""
            return np.argmax(probs, axis=2).astype(np.int64)

        try:
            config = decision_config()
            config.evaluation.rules = ["bayes", "stub_argmax"]
            report = Runner().run(config)
            rows = {
                (row["rule"], row["metric"]): row["mean"]
                for row in report.table("rules")
            }
            # The stub is the Bayes rule under another name: same numbers.
            for metric in ("precision", "recall", "non_detection_rate", "pixel_accuracy"):
                assert rows[("stub_argmax", metric)] == rows[("bayes", metric)]
        finally:
            DECISION_RULES._entries.pop("stub_argmax")


class TestRunnerTimedynamic:
    def test_report_shape(self, timedynamic_report):
        assert timedynamic_report.kind == "timedynamic"
        assert set(timedynamic_report.tables) == {"classification", "regression"}
        assert timedynamic_report.provenance["n_real_segments"] > 0
        assert timedynamic_report.provenance["reference_network"] == "xception65"

    def test_rows_cover_all_cells(self, timedynamic_report):
        rows = timedynamic_report.table("classification")
        cells = {(row["composition"], row["method"], row["n_frames"], row["metric"])
                 for row in rows}
        assert cells == {
            ("R", "gradient_boosting", n, metric)
            for n in (0, 1) for metric in ("accuracy", "auroc")
        }


class TestRunnerDecision:
    def test_report_shape(self, decision_report):
        assert decision_report.kind == "decision"
        assert set(decision_report.tables) == {"rules"}
        rules = {row["rule"] for row in decision_report.table("rules")}
        assert rules == {"bayes", "ml"}

    def test_ml_rule_reduces_non_detections(self, decision_report):
        non_detection = {
            row["rule"]: row["mean"]
            for row in decision_report.table("rules")
            if row["metric"] == "non_detection_rate"
        }
        assert non_detection["ml"] <= non_detection["bayes"]

    def test_bitwise_parity_with_direct_comparison(self, decision_report):
        config = decision_config()
        seeds = derived_seeds(config.seed)
        dataset = CityscapesLikeDataset(
            n_train=4, n_val=3,
            scene_config=SceneConfig(height=TINY_HEIGHT, width=TINY_WIDTH),
            random_state=seeds.data,
        )
        network = SimulatedSegmentationNetwork(
            mobilenetv2_profile(), random_state=seeds.network
        )
        comparison = DecisionRuleComparison(network, category="human")
        comparison.fit_priors(dataset.train_samples())
        result = comparison.compare(dataset.val_samples(), rules=("bayes", "ml"))
        pixel_accuracy = {
            row["rule"]: row["mean"]
            for row in decision_report.table("rules")
            if row["metric"] == "pixel_accuracy"
        }
        assert pixel_accuracy == result.pixel_accuracy


class TestConfigCompatibility:
    def test_kind_dataset_mismatch_is_a_config_error(self):
        video_for_metaseg = metaseg_config()
        video_for_metaseg.data.dataset = "kitti_like_small"
        with pytest.raises(ValueError, match="does not fit experiment kind 'metaseg'"):
            Runner().resolve(video_for_metaseg)
        frames_for_video = timedynamic_config()
        frames_for_video.data.dataset = "cityscapes_like_small"
        with pytest.raises(ValueError, match="does not fit experiment kind 'timedynamic'"):
            Runner().resolve(frames_for_video)

    def test_kind_dataset_mismatch_via_cli(self, tmp_path, capsys):
        config = metaseg_config()
        config.data.dataset = "kitti_like_small"
        path = tmp_path / "mismatch.json"
        path.write_text(config.to_json())
        assert main(["run", str(path)]) == 2
        assert "does not fit experiment kind" in capsys.readouterr().err

    def test_timedynamic_shared_method_constraint_explained(self):
        config = timedynamic_config()
        config.meta_models.classifiers = ["logistic"]  # classifier-only family
        with pytest.raises(ValueError, match="both meta-classifier and meta-regressor"):
            Runner().resolve(config)


class TestDeterminism:
    def test_same_config_same_json_bitwise(self, metaseg_report):
        again = run_experiment(metaseg_config())
        assert again.to_json() == metaseg_report.to_json()

    def test_dict_configs_supported(self, metaseg_report):
        report = Runner().run(metaseg_config().to_dict())
        assert report.to_json() == metaseg_report.to_json()

    def test_different_seed_changes_results(self, metaseg_report):
        other = Runner().run(metaseg_config(seed=10))
        assert other.to_json() != metaseg_report.to_json()

    def test_timings_excluded_from_json_by_default(self, metaseg_report):
        payload = json.loads(metaseg_report.to_json())
        assert "timings" not in payload
        with_timings = json.loads(metaseg_report.to_json(include_timings=True))
        assert "timings" in with_timings

    def test_report_json_round_trip(self, metaseg_report):
        rebuilt = ExperimentReport.from_json(metaseg_report.to_json())
        assert rebuilt.to_json() == metaseg_report.to_json()
        assert rebuilt.tables == metaseg_report.tables

    def test_summary_rows_render(self, metaseg_report):
        rows = metaseg_report.summary_rows()
        assert rows[0].startswith("experiment: metaseg (tiny)")
        assert any("variant=logistic_penalized" in row for row in rows)


class TestCli:
    def _write_config(self, tmp_path, config):
        path = tmp_path / "config.json"
        path.write_text(config.to_json())
        return path

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for kind in ("networks", "datasets", "metric_groups", "meta_classifiers",
                     "meta_regressors", "decision_rules"):
            assert kind in out

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(len(names) >= 3 for names in payload.values())

    def test_describe_registry_and_entry(self, capsys):
        assert main(["describe", "networks"]) == 0
        assert "mobilenetv2" in capsys.readouterr().out
        assert main(["describe", "networks", "mobilenetv2"]) == 0
        assert "MobilenetV2" in capsys.readouterr().out

    def test_describe_data_entry_shows_contents(self, capsys):
        # Metric groups are tuples; their contents (not tuple.__doc__) print.
        assert main(["describe", "metric_groups", "geometry"]) == 0
        out = capsys.readouterr().out
        assert "'S_bd'" in out and "immutable sequence" not in out

    def test_describe_unknown(self, capsys):
        assert main(["describe", "nope"]) == 2
        assert "unknown registry" in capsys.readouterr().err
        assert main(["describe", "networks", "nope"]) == 2
        assert "unknown networks entry" in capsys.readouterr().err

    def test_run_writes_report(self, tmp_path, capsys, metaseg_report):
        path = self._write_config(tmp_path, metaseg_config())
        output = tmp_path / "report.json"
        assert main(["run", str(path), "--output", str(output)]) == 0
        assert "experiment: metaseg" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload == json.loads(metaseg_report.to_json())

    def test_run_seed_override(self, tmp_path, capsys, metaseg_report):
        path = self._write_config(tmp_path, metaseg_config())
        output = tmp_path / "report.json"
        assert main(["run", str(path), "--seed", "10", "--output", str(output)]) == 0
        assert json.loads(output.read_text())["seed"] == 10

    def test_run_missing_config(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.json")]) == 2
        assert "cannot read config" in capsys.readouterr().err

    def test_run_invalid_config(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "metaseg", "typo": True}))
        assert main(["run", str(path)]) == 2
        assert "invalid config" in capsys.readouterr().err

    def test_run_unknown_registry_name(self, tmp_path, capsys):
        config = metaseg_config()
        config.network.profile = "resnet101"
        path = self._write_config(tmp_path, config)
        assert main(["run", str(path)]) == 2
        assert "unknown networks entry" in capsys.readouterr().err

    def test_example_configs_parse_and_validate(self):
        from pathlib import Path

        from repro.sweep import SweepConfig

        config_dir = Path(__file__).resolve().parent.parent / "examples" / "configs"
        paths = sorted(config_dir.glob("*.json"))
        assert len(paths) >= 3
        kinds = set()
        for path in paths:
            if path.name.startswith("sweep_"):
                # Sweep configs validate their base + every grid point.
                sweep = SweepConfig.from_file(path)
                for point in sweep.points():
                    Runner().resolve(point.config)
                continue
            config = ExperimentConfig.from_json(path.read_text())
            config.validate()
            Runner().resolve(config)
            kinds.add(config.kind)
        assert kinds == {"metaseg", "timedynamic", "decision"}

    def test_metaseg_small_config_matches_direct_pipeline(self, tmp_path, capsys):
        """Acceptance criterion: the checked-in CLI config reproduces the
        equivalent direct MetaSegPipeline numbers bitwise."""
        from pathlib import Path

        config_path = (Path(__file__).resolve().parent.parent
                       / "examples" / "configs" / "metaseg_small.json")
        output = tmp_path / "report.json"
        assert main(["run", str(config_path), "--output", str(output)]) == 0
        capsys.readouterr()
        report = ExperimentReport.from_json(output.read_text())

        config = ExperimentConfig.from_json(config_path.read_text())
        seeds = derived_seeds(config.seed)
        dataset = CityscapesLikeDataset(
            n_train=0, n_val=config.data.n_val,
            scene_config=SceneConfig(height=64, width=128),  # "_small" preset
            random_state=seeds.data,
        )
        network = SimulatedSegmentationNetwork(
            mobilenetv2_profile(), random_state=seeds.network
        )
        pipeline = MetaSegPipeline(network)
        metrics = pipeline.extract_dataset(dataset.val_samples())
        result = pipeline.run_table1_protocol(
            metrics,
            n_runs=config.evaluation.n_runs,
            train_fraction=config.evaluation.train_fraction,
            random_state=seeds.protocol,
        )
        for row in report.table("classification"):
            if row["variant"] == "naive":
                assert row["mean"] == result.naive_accuracy
                continue
            mean, std = result.classification[row["variant"]][row["metric"]]
            assert (row["mean"], row["std"]) == (mean, std)
        for row in report.table("regression"):
            mean, std = result.regression[row["variant"]][row["metric"]]
            assert (row["mean"], row["std"]) == (mean, std)
