"""Tests for fitted-model reuse across store-cached runs (repro.store.fits).

The latent re-fit waste: two sweep points differing only in *evaluation*
fields share every fitted meta-model, but the batch path used to refit them
from scratch.  All three experiment kinds now route their fits through the
store — metaseg/timedynamic via :class:`FitCache`, decision via priors
caching — and the hard gate is unchanged: a cached-fit run stays **bitwise
identical** to a fresh storeless run.
"""

import pytest

from repro.api.config import (
    DataConfig,
    EvalConfig,
    ExperimentConfig,
    MetaModelConfig,
)
from repro.api.runner import Runner
from repro.core.meta_classification import MetaClassifier
from repro.store import FitCache, ResultStore

from test_store import decision_config, metaseg_config, timedynamic_config


def _fits(report) -> dict:
    assert "fits" in report.cache, f"no fit counters in {report.cache!r}"
    return report.cache["fits"]


class TestMetasegFitReuse:
    def test_eval_only_change_reuses_fits_bitwise(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        first = runner.run(metaseg_config())  # n_runs=2
        counters = _fits(first)
        assert counters["misses"] > 0
        assert counters["hits"] == 0
        # n_runs=3 is an eval-only change: a different report key, but runs
        # 0 and 1 re-use every fitted meta-model from the first experiment.
        def extended_config():
            config = metaseg_config()
            config.evaluation.n_runs = 3
            return config

        extended = runner.run(extended_config())
        assert extended.cache["hit"] is False
        counters = _fits(extended)
        assert counters["hits"] > 0
        assert counters["misses"] > 0  # run 2 is new
        fresh = Runner().run(extended_config())
        assert extended.to_json() == fresh.to_json()

    def test_identical_rerun_without_report_cache_hits_every_fit(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        first = runner.run(metaseg_config())
        # Drop the report entry, keep the fits: the re-run recomputes the
        # report but loads every meta-model from the store.
        assert store.evict(first.cache["key"]) is True
        again = runner.run(metaseg_config())
        assert again.cache["hit"] is False
        counters = _fits(again)
        assert counters["misses"] == 0
        assert counters["hits"] == _fits(first)["misses"]
        assert again.to_json() == first.to_json()


class TestTimedynamicFitReuse:
    def test_eval_only_change_reuses_fits_bitwise(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        first = runner.run(timedynamic_config())  # n_frames_list=[0, 1]
        assert _fits(first)["misses"] > 0
        config = timedynamic_config()
        config.evaluation.n_frames_list = [0]
        shrunk = runner.run(config)
        assert shrunk.cache["hit"] is False
        counters = _fits(shrunk)
        assert counters["hits"] > 0
        assert counters["misses"] == 0  # strictly a subset of the first run
        config = timedynamic_config()
        config.evaluation.n_frames_list = [0]
        fresh = Runner().run(config)
        assert shrunk.to_json() == fresh.to_json()


class TestDecisionPriorsReuse:
    def test_rule_change_reuses_priors_bitwise(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        first = runner.run(decision_config())  # rules=["bayes", "ml"]
        assert _fits(first)["misses"] == 1
        config = decision_config()
        config.evaluation.rules = ["bayes"]
        narrowed = runner.run(config)
        assert narrowed.cache["hit"] is False
        counters = _fits(narrowed)
        assert counters["hits"] == 1
        assert counters["misses"] == 0
        config = decision_config()
        config.evaluation.rules = ["bayes"]
        fresh = Runner().run(config)
        assert narrowed.to_json() == fresh.to_json()
        # Provenance preserved on the hit: n_train_images comes from the
        # cached payload, not a re-walk of the split.
        assert (
            narrowed.provenance["n_train_images"]
            == first.provenance["n_train_images"]
        )


class TestFitCacheUnit:
    def test_supports_requires_state_protocol(self):
        assert FitCache.supports(MetaClassifier(method="logistic")) is True
        assert FitCache.supports(object()) is False

    def test_corrupted_fit_entry_refits(self, tmp_path, metrics_dataset):
        store = ResultStore(tmp_path)
        config = metaseg_config()
        cache = FitCache(store, config.to_dict())
        train, test = metrics_dataset.split((0.8, 0.2), random_state=1)
        split = {"protocol": "unit", "split_seed": 1}
        model = MetaClassifier(method="logistic", random_state=3)
        fitted = cache.fit_or_load(model, train, split)
        assert cache.counters == {"hits": 0, "misses": 1}
        key = cache.fit_key(model, split)
        store._payload_path(key).write_bytes(b"{broken")
        refit = cache.fit_or_load(
            MetaClassifier(method="logistic", random_state=3), train, split
        )
        assert cache.counters["misses"] == 2
        import numpy as np

        np.testing.assert_array_equal(
            fitted.predict_proba(test), refit.predict_proba(test)
        )
