"""Tests for the shared batched execution layer and the batched pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batching import chunked, map_ordered, normalize_max_workers


class TestChunked:
    def test_even_chunks(self):
        assert list(chunked(range(6), 2)) == [[0, 1], [2, 3], [4, 5]]

    def test_remainder_chunk(self):
        assert list(chunked(range(5), 2)) == [[0, 1], [2, 3], [4]]

    def test_empty_iterable(self):
        assert list(chunked([], 3)) == []

    def test_lazy_iterable(self):
        def gen():
            yield from range(4)

        assert list(chunked(gen(), 3)) == [[0, 1, 2], [3]]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(chunked(range(3), 0))


class TestMapOrdered:
    def test_serial_preserves_order(self):
        assert map_ordered(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_threaded_preserves_order(self):
        items = list(range(50))
        assert map_ordered(lambda x: x + 1, items, max_workers=4) == [x + 1 for x in items]

    def test_single_item_runs_serially(self):
        assert map_ordered(lambda x: x, [7], max_workers=8) == [7]

    def test_negative_workers_raises(self):
        with pytest.raises(ValueError):
            map_ordered(lambda x: x, [1, 2], max_workers=-1)

    def test_zero_workers_runs_serially(self):
        # The unified contract: None, 0 and 1 all mean serial execution.
        assert map_ordered(lambda x: x * 2, [1, 2, 3], max_workers=0) == [2, 4, 6]


class TestNormalizeMaxWorkers:
    """The library-wide worker contract lives in exactly one place."""

    def test_none_without_default_stays_none(self):
        assert normalize_max_workers(None) is None

    def test_none_falls_back_to_default(self):
        assert normalize_max_workers(None, 4) == 4

    def test_explicit_value_wins_over_default(self):
        assert normalize_max_workers(2, 8) == 2

    @pytest.mark.parametrize("serial", [0, 1])
    def test_serial_values_pass_through(self, serial):
        assert normalize_max_workers(serial) == serial

    @pytest.mark.parametrize("bad", [-1, -7])
    def test_negative_rejected_with_contract_message(self, bad):
        with pytest.raises(ValueError, match="None, 0 and 1 run serially"):
            normalize_max_workers(bad)

    def test_negative_default_also_rejected(self):
        with pytest.raises(ValueError):
            normalize_max_workers(None, -2)


def _assert_datasets_identical(left, right):
    assert left.feature_names == right.feature_names
    np.testing.assert_array_equal(left.features, right.features)
    np.testing.assert_array_equal(left.segment_ids, right.segment_ids)
    np.testing.assert_array_equal(left.class_ids, right.class_ids)
    assert list(left.image_ids) == list(right.image_ids)
    np.testing.assert_array_equal(left.target_iou(), right.target_iou())


class TestBatchedExtraction:
    def test_batched_matches_serial(self, metaseg_pipeline, cityscapes_like):
        samples = cityscapes_like.val_samples()
        serial = metaseg_pipeline.extract_dataset(samples)
        for chunk_size, max_workers in ((1, None), (3, None), (2, 2), (8, 4)):
            batched = metaseg_pipeline.extract_dataset_batched(
                samples, chunk_size=chunk_size, max_workers=max_workers
            )
            _assert_datasets_identical(serial, batched)

    def test_streaming_parts_respect_chunk_size(self, metaseg_pipeline, cityscapes_like):
        samples = cityscapes_like.val_samples()
        parts = list(metaseg_pipeline.iter_extract_batched(samples, chunk_size=3))
        assert len(parts) == (len(samples) + 2) // 3
        images_per_part = [len(set(part.image_ids)) for part in parts]
        assert images_per_part == [3] * (len(samples) // 3) + (
            [len(samples) % 3] if len(samples) % 3 else []
        )

    def test_index_offset_is_respected(self, metaseg_pipeline, cityscapes_like):
        samples = cityscapes_like.val_samples()[:2]
        offset = metaseg_pipeline.extract_dataset(samples, index_offset=5)
        batched = metaseg_pipeline.extract_dataset_batched(
            samples, index_offset=5, chunk_size=1, max_workers=2
        )
        _assert_datasets_identical(offset, batched)

    def test_no_samples_raises(self, metaseg_pipeline):
        with pytest.raises(ValueError):
            metaseg_pipeline.extract_dataset_batched([])


class TestBatchedDecisionCompare:
    def test_parallel_compare_matches_serial(self, cityscapes_like, xception_network):
        from repro.decision.pipeline import DecisionRuleComparison

        comparison = DecisionRuleComparison(xception_network)
        comparison.fit_priors(cityscapes_like.train_samples())
        samples = cityscapes_like.val_samples()
        serial = comparison.compare(samples)
        parallel = comparison.compare(samples, max_workers=4)
        for rule in serial.per_rule:
            assert (
                serial.per_rule[rule].precision_values
                == parallel.per_rule[rule].precision_values
            )
            assert (
                serial.per_rule[rule].recall_values
                == parallel.per_rule[rule].recall_values
            )
            assert serial.pixel_accuracy[rule] == parallel.pixel_accuracy[rule]


class TestBatchedTimeDynamic:
    @pytest.mark.slow
    def test_parallel_process_dataset_matches_serial(
        self, kitti_like, mobilenet_network, xception_network
    ):
        from repro.timedynamic.pipeline import TimeDynamicPipeline

        pipeline = TimeDynamicPipeline(mobilenet_network, xception_network)
        serial = pipeline.process_dataset(kitti_like)
        parallel = pipeline.process_dataset(kitti_like, max_workers=2)
        assert len(serial) == len(parallel)
        for left, right in zip(serial, parallel):
            assert left.sequence_id == right.sequence_id
            assert left.n_frames == right.n_frames
            assert left.track_assignments == right.track_assignments
            for frame_left, frame_right in zip(left.frames, right.frames):
                np.testing.assert_array_equal(
                    frame_left.dataset.features, frame_right.dataset.features
                )
                if frame_left.dataset.has_targets:
                    np.testing.assert_array_equal(
                        frame_left.dataset.target_iou(), frame_right.dataset.target_iou()
                    )
