"""Tests for repro.models.tree and repro.models.gradient_boosting."""

import numpy as np
import pytest

from repro.models.gradient_boosting import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
)
from repro.models.tree import DecisionTreeRegressor


def _step_data(rng, n=200):
    x = rng.uniform(-1, 1, size=(n, 2))
    y = np.where(x[:, 0] > 0, 2.0, -1.0) + 0.01 * rng.normal(size=n)
    return x, y


class TestDecisionTreeRegressor:
    def test_fits_step_function(self, rng):
        x, y = _step_data(rng)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert tree.score(x, y) > 0.95

    def test_depth_zero_predicts_mean(self, rng):
        x, y = _step_data(rng)
        tree = DecisionTreeRegressor(max_depth=0).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y.mean())
        assert tree.n_leaves() == 1

    def test_depth_bounded(self, rng):
        x = rng.uniform(size=(300, 3))
        y = rng.normal(size=300)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf_respected(self, rng):
        x, y = _step_data(rng, n=30)
        tree = DecisionTreeRegressor(max_depth=8, min_samples_leaf=10).fit(x, y)
        # With 30 samples and a 10-sample leaf minimum there can be at most 3 leaves.
        assert tree.n_leaves() <= 3

    def test_constant_target_single_leaf(self):
        x = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.full(20, 7.0)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert tree.n_leaves() == 1
        np.testing.assert_allclose(tree.predict(x), 7.0)

    def test_max_features_subsampling_still_fits(self, rng):
        x, y = _step_data(rng)
        tree = DecisionTreeRegressor(max_depth=3, max_features="sqrt", random_state=0).fit(x, y)
        assert np.isfinite(tree.predict(x)).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features="log2")
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features=1.5)

    def test_feature_mismatch_on_predict(self, rng):
        x, y = _step_data(rng)
        tree = DecisionTreeRegressor().fit(x, y)
        with pytest.raises(ValueError):
            tree.predict(rng.normal(size=(3, 5)))


class TestGradientBoostingRegressor:
    def test_improves_over_single_tree(self, rng):
        x = rng.uniform(-2, 2, size=(300, 2))
        y = np.sin(2 * x[:, 0]) + 0.3 * x[:, 1] ** 2
        tree_score = DecisionTreeRegressor(max_depth=2).fit(x, y).score(x, y)
        boosted = GradientBoostingRegressor(n_estimators=80, max_depth=2, random_state=0).fit(x, y)
        assert boosted.score(x, y) > tree_score

    def test_training_loss_decreases(self, rng):
        x, y = _step_data(rng)
        model = GradientBoostingRegressor(n_estimators=30, random_state=0).fit(x, y)
        assert model.train_loss_[-1] < model.train_loss_[0]

    def test_subsample_runs(self, rng):
        x, y = _step_data(rng)
        model = GradientBoostingRegressor(n_estimators=10, subsample=0.5, random_state=0).fit(x, y)
        assert np.isfinite(model.predict(x)).all()

    def test_deterministic_given_seed(self, rng):
        x, y = _step_data(rng)
        a = GradientBoostingRegressor(n_estimators=15, random_state=5).fit(x, y).predict(x)
        b = GradientBoostingRegressor(n_estimators=15, random_state=5).fit(x, y).predict(x)
        np.testing.assert_allclose(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)


class TestGradientBoostingClassifier:
    def test_learns_nonlinear_boundary(self, rng):
        x = rng.uniform(-1, 1, size=(400, 2))
        y = ((x[:, 0] ** 2 + x[:, 1] ** 2) < 0.5).astype(int)
        model = GradientBoostingClassifier(n_estimators=60, max_depth=2, random_state=0).fit(x, y)
        assert model.score(x, y) > 0.9

    def test_probabilities_in_range(self, rng):
        x = rng.normal(size=(100, 3))
        y = (x[:, 0] > 0).astype(int)
        model = GradientBoostingClassifier(n_estimators=20, random_state=0).fit(x, y)
        p = model.predict_proba(x)
        assert np.all((p >= 0) & (p <= 1))

    def test_initial_prediction_matches_base_rate(self, rng):
        x = rng.normal(size=(200, 2))
        y = (rng.uniform(size=200) < 0.25).astype(int)
        if y.sum() == 0:
            y[:3] = 1
        model = GradientBoostingClassifier(n_estimators=1, random_state=0).fit(x, y)
        base_rate = y.mean()
        implied = 1.0 / (1.0 + np.exp(-model.initial_prediction_))
        assert abs(implied - base_rate) < 1e-9

    def test_requires_binary_labels(self, rng):
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(rng.normal(size=(10, 2)), np.arange(10))

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(rng.normal(size=(10, 2)), np.zeros(9, dtype=int))

    def test_threshold_monotonicity(self, rng):
        x = rng.normal(size=(150, 2))
        y = (x[:, 0] > 0).astype(int)
        model = GradientBoostingClassifier(n_estimators=20, random_state=0).fit(x, y)
        assert model.predict(x, threshold=0.1).sum() >= model.predict(x, threshold=0.9).sum()
