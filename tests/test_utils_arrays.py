"""Tests for repro.utils.arrays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.arrays import (
    boundary_mask,
    crop_center,
    downsample_probability_field,
    mean_std,
    one_hot,
    pad_to_shape,
    renormalise_probabilities,
    resize_bilinear,
    resize_nearest,
)


class TestMeanStd:
    def test_matches_numpy_population_std(self):
        values = [0.1, 0.4, 0.4, 0.9]
        mean, std = mean_std(values)
        assert mean == pytest.approx(np.mean(values))
        assert std == pytest.approx(np.std(values, ddof=0))

    def test_accepts_arrays_and_returns_floats(self):
        mean, std = mean_std(np.array([1.0, 3.0]))
        assert isinstance(mean, float) and isinstance(std, float)
        assert (mean, std) == (2.0, 1.0)

    def test_single_value_has_zero_std(self):
        assert mean_std([0.5]) == (0.5, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            mean_std([])


class TestOneHot:
    def test_basic_encoding(self):
        labels = np.array([[0, 1], [2, 1]])
        encoded = one_hot(labels, 3)
        assert encoded.shape == (2, 2, 3)
        assert encoded[0, 0, 0] == 1.0
        assert encoded[1, 0, 2] == 1.0
        assert encoded.sum() == 4.0

    def test_ignore_pixels_all_zero(self):
        labels = np.array([[0, -1]])
        encoded = one_hot(labels, 2)
        assert encoded[0, 1].sum() == 0.0

    def test_too_few_classes_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([[3]]), 3)


class TestBoundaryMask:
    def test_interior_of_uniform_map_is_not_boundary(self):
        labels = np.zeros((5, 5), dtype=int)
        mask = boundary_mask(labels)
        assert not mask[2, 2]

    def test_image_border_is_boundary(self):
        labels = np.zeros((5, 5), dtype=int)
        mask = boundary_mask(labels)
        assert mask[0, :].all() and mask[:, 0].all()

    def test_class_transition_is_boundary(self):
        labels = np.zeros((5, 6), dtype=int)
        labels[:, 3:] = 1
        mask = boundary_mask(labels)
        assert mask[2, 2] and mask[2, 3]
        assert not mask[2, 1]

    def test_invalid_connectivity(self):
        with pytest.raises(ValueError):
            boundary_mask(np.zeros((3, 3), dtype=int), connectivity=6)

    def test_8_connectivity_marks_diagonal_transitions(self):
        labels = np.zeros((4, 4), dtype=int)
        labels[2:, 2:] = 1
        mask4 = boundary_mask(labels, connectivity=4)
        mask8 = boundary_mask(labels, connectivity=8)
        assert mask8.sum() >= mask4.sum()


class TestCropCenter:
    def test_crop_shape(self):
        array = np.arange(36).reshape(6, 6)
        crop = crop_center(array, 4, 2)
        assert crop.shape == (4, 2)

    def test_center_content(self):
        array = np.arange(25).reshape(5, 5)
        crop = crop_center(array, 1, 1)
        assert crop[0, 0] == 12

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            crop_center(np.zeros((4, 4)), 5, 2)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            crop_center(np.zeros((4, 4)), 0, 2)

    def test_3d_crop_keeps_channels(self):
        array = np.zeros((6, 6, 3))
        assert crop_center(array, 2, 2).shape == (2, 2, 3)


class TestResize:
    def test_nearest_identity(self):
        array = np.arange(12).reshape(3, 4)
        np.testing.assert_array_equal(resize_nearest(array, 3, 4), array)

    def test_nearest_upscale_shape(self):
        assert resize_nearest(np.zeros((3, 4)), 6, 8).shape == (6, 8)

    def test_bilinear_constant_field_preserved(self):
        array = np.full((4, 5), 3.25)
        out = resize_bilinear(array, 9, 11)
        np.testing.assert_allclose(out, 3.25)

    def test_bilinear_3d(self):
        array = np.random.default_rng(0).uniform(size=(4, 4, 2))
        out = resize_bilinear(array, 8, 8)
        assert out.shape == (8, 8, 2)

    def test_bilinear_range_preserved(self):
        array = np.random.default_rng(1).uniform(size=(6, 6))
        out = resize_bilinear(array, 13, 7)
        assert out.min() >= array.min() - 1e-12
        assert out.max() <= array.max() + 1e-12

    def test_invalid_target_raises(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((3, 3)), 0, 3)
        with pytest.raises(ValueError):
            resize_nearest(np.zeros((3, 3)), 3, 0)


class TestRenormalise:
    def test_rows_sum_to_one(self):
        field = np.random.default_rng(2).uniform(size=(5, 5, 7))
        out = renormalise_probabilities(field)
        np.testing.assert_allclose(out.sum(axis=2), 1.0)

    def test_negative_values_clipped(self):
        field = np.array([[[-1.0, 2.0]]])
        out = renormalise_probabilities(field)
        assert out[0, 0, 0] == 0.0
        assert out[0, 0, 1] == 1.0

    def test_all_zero_pixel_stays_finite(self):
        field = np.zeros((1, 1, 3))
        out = renormalise_probabilities(field)
        assert np.all(np.isfinite(out))


class TestDownsample:
    def test_factor_one_is_copy(self):
        field = np.full((4, 4, 2), 0.5)
        out = downsample_probability_field(field, 1)
        np.testing.assert_array_equal(out, field)
        assert out is not field

    def test_shape_halved(self):
        field = np.full((8, 6, 2), 0.5)
        assert downsample_probability_field(field, 2).shape == (4, 3, 2)

    def test_remains_normalised(self):
        rng = np.random.default_rng(3)
        field = rng.uniform(size=(8, 8, 5))
        field = field / field.sum(axis=2, keepdims=True)
        out = downsample_probability_field(field, 2)
        np.testing.assert_allclose(out.sum(axis=2), 1.0)

    def test_too_large_factor_raises(self):
        field = np.full((4, 4, 2), 0.5)
        with pytest.raises(ValueError):
            downsample_probability_field(field, 8)

    def test_invalid_factor_raises(self):
        field = np.full((4, 4, 2), 0.5)
        with pytest.raises(ValueError):
            downsample_probability_field(field, 0)


class TestPadToShape:
    def test_pads_symmetrically(self):
        out = pad_to_shape(np.ones((2, 2)), 4, 4)
        assert out.shape == (4, 4)
        assert out.sum() == 4.0
        assert out[1, 1] == 1.0

    def test_3d(self):
        assert pad_to_shape(np.ones((2, 2, 3)), 4, 6).shape == (4, 6, 3)

    def test_shrinking_raises(self):
        with pytest.raises(ValueError):
            pad_to_shape(np.ones((4, 4)), 2, 6)


@given(
    height=st.integers(min_value=1, max_value=12),
    width=st.integers(min_value=1, max_value=12),
    target_h=st.integers(min_value=1, max_value=24),
    target_w=st.integers(min_value=1, max_value=24),
)
@settings(max_examples=30, deadline=None)
def test_property_resize_nearest_values_come_from_source(height, width, target_h, target_w):
    rng = np.random.default_rng(height * 100 + width)
    array = rng.integers(0, 5, size=(height, width))
    out = resize_nearest(array, target_h, target_w)
    assert out.shape == (target_h, target_w)
    assert set(np.unique(out)).issubset(set(np.unique(array)))
