"""Tests for repro.models.selection."""

import numpy as np
import pytest

from repro.models.selection import k_fold_indices, train_test_split, train_val_test_split


class TestTrainTestSplit:
    def test_sizes(self):
        x = np.arange(100).reshape(-1, 1)
        y = np.arange(100)
        x_train, x_test, y_train, y_test = train_test_split(x, y, test_fraction=0.2, random_state=0)
        assert len(x_train) == 80 and len(x_test) == 20
        assert len(y_train) == 80 and len(y_test) == 20

    def test_alignment_preserved(self):
        x = np.arange(50).reshape(-1, 1)
        y = np.arange(50) * 10
        x_train, x_test, y_train, y_test = train_test_split(x, y, random_state=1)
        np.testing.assert_array_equal(x_train[:, 0] * 10, y_train)
        np.testing.assert_array_equal(x_test[:, 0] * 10, y_test)

    def test_no_overlap(self):
        x = np.arange(30)
        x_train, x_test = train_test_split(x, test_fraction=0.3, random_state=2)
        assert set(x_train).isdisjoint(set(x_test))
        assert set(x_train) | set(x_test) == set(range(30))

    def test_deterministic_given_seed(self):
        x = np.arange(40)
        a_train, a_test = train_test_split(x, random_state=7)
        b_train, b_test = train_test_split(x, random_state=7)
        np.testing.assert_array_equal(a_train, b_train)
        np.testing.assert_array_equal(a_test, b_test)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            train_test_split()
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), np.arange(9))


class TestTrainValTestSplit:
    def test_partition(self):
        train, val, test = train_val_test_split(100, (0.7, 0.1, 0.2), random_state=0)
        assert len(train) == 70 and len(val) == 10 and len(test) == 20
        assert sorted(np.concatenate([train, val, test]).tolist()) == list(range(100))

    def test_requires_three_fractions(self):
        with pytest.raises(ValueError):
            train_val_test_split(10, (0.5, 0.5))


class TestKFold:
    def test_folds_cover_everything(self):
        folds = k_fold_indices(23, n_folds=5, random_state=0)
        assert len(folds) == 5
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(23))

    def test_train_test_disjoint_per_fold(self):
        for train, test in k_fold_indices(30, n_folds=3, random_state=1):
            assert set(train).isdisjoint(set(test))
            assert len(train) + len(test) == 30

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            k_fold_indices(10, n_folds=1)
        with pytest.raises(ValueError):
            k_fold_indices(3, n_folds=5)
