"""Tests for repro.models.neural_network."""

import numpy as np
import pytest

from repro.models.neural_network import MLPClassifier, MLPRegressor


class TestMLPRegressor:
    def test_fits_linear_function(self, rng):
        x = rng.uniform(-1, 1, size=(300, 2))
        y = 2 * x[:, 0] - x[:, 1]
        model = MLPRegressor(hidden_layer_sizes=(16,), n_epochs=150, random_state=0).fit(x, y)
        assert model.score(x, y) > 0.9

    def test_fits_nonlinear_function(self, rng):
        x = rng.uniform(-1, 1, size=(400, 1))
        y = np.abs(x[:, 0])
        model = MLPRegressor(hidden_layer_sizes=(16,), n_epochs=200, random_state=0).fit(x, y)
        assert model.score(x, y) > 0.8

    def test_loss_curve_decreases(self, rng):
        x = rng.uniform(-1, 1, size=(200, 2))
        y = x[:, 0] + x[:, 1]
        model = MLPRegressor(n_epochs=50, random_state=0).fit(x, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_l2_penalty_shrinks_weights(self, rng):
        x = rng.uniform(-1, 1, size=(200, 2))
        y = 3 * x[:, 0]
        free = MLPRegressor(l2_penalty=0.0, n_epochs=80, random_state=0).fit(x, y)
        strong = MLPRegressor(l2_penalty=5.0, n_epochs=80, random_state=0).fit(x, y)
        norm_free = sum(np.linalg.norm(w) for w in free.weights_)
        norm_strong = sum(np.linalg.norm(w) for w in strong.weights_)
        assert norm_strong < norm_free

    def test_deterministic_given_seed(self, rng):
        x = rng.uniform(size=(100, 2))
        y = x[:, 0]
        a = MLPRegressor(n_epochs=20, random_state=3).fit(x, y).predict(x)
        b = MLPRegressor(n_epochs=20, random_state=3).fit(x, y).predict(x)
        np.testing.assert_allclose(a, b)

    def test_two_hidden_layers(self, rng):
        x = rng.uniform(size=(100, 3))
        y = x.sum(axis=1)
        model = MLPRegressor(hidden_layer_sizes=(16, 8), n_epochs=60, random_state=0).fit(x, y)
        assert np.isfinite(model.predict(x)).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MLPRegressor(hidden_layer_sizes=())
        with pytest.raises(ValueError):
            MLPRegressor(hidden_layer_sizes=(0,))
        with pytest.raises(ValueError):
            MLPRegressor(l2_penalty=-1.0)
        with pytest.raises(ValueError):
            MLPRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            MLPRegressor(n_epochs=0)

    def test_feature_mismatch_on_predict(self, rng):
        x = rng.uniform(size=(50, 2))
        model = MLPRegressor(n_epochs=5, random_state=0).fit(x, x[:, 0])
        with pytest.raises(ValueError):
            model.predict(rng.uniform(size=(5, 3)))


class TestMLPClassifier:
    def test_learns_separable_problem(self, rng):
        x = rng.normal(size=(300, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = MLPClassifier(hidden_layer_sizes=(16,), n_epochs=100, random_state=0).fit(x, y)
        assert model.score(x, y) > 0.9

    def test_learns_xor_like_problem(self, rng):
        x = rng.uniform(-1, 1, size=(500, 2))
        y = ((x[:, 0] * x[:, 1]) > 0).astype(int)
        model = MLPClassifier(hidden_layer_sizes=(32,), n_epochs=250, learning_rate=5e-3,
                              random_state=0).fit(x, y)
        assert model.score(x, y) > 0.8

    def test_probabilities_in_range(self, rng):
        x = rng.normal(size=(100, 2))
        y = (x[:, 0] > 0).astype(int)
        model = MLPClassifier(n_epochs=30, random_state=0).fit(x, y)
        p = model.predict_proba(x)
        assert np.all((p >= 0) & (p <= 1))

    def test_requires_binary_labels(self, rng):
        with pytest.raises(ValueError):
            MLPClassifier().fit(rng.normal(size=(10, 2)), np.arange(10))

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            MLPClassifier().fit(rng.normal(size=(10, 2)), np.zeros(9, dtype=int))

    def test_predict_threshold(self, rng):
        x = rng.normal(size=(150, 2))
        y = (x[:, 0] > 0).astype(int)
        model = MLPClassifier(n_epochs=40, random_state=0).fit(x, y)
        assert model.predict(x, threshold=0.1).sum() >= model.predict(x, threshold=0.9).sum()
