"""Shared fixtures for the test suite.

Expensive objects (generated scenes, network inference, extracted metric
datasets) are session-scoped so the several hundred tests stay fast; every
fixture uses fixed seeds so failures are reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import SegmentMetricsExtractor
from repro.core.pipeline import MetaSegPipeline
from repro.segmentation.datasets import CityscapesLikeDataset, KittiLikeDataset
from repro.segmentation.labels import cityscapes_label_space
from repro.segmentation.network import (
    SimulatedSegmentationNetwork,
    mobilenetv2_profile,
    xception65_profile,
)
from repro.segmentation.scene import SceneConfig, StreetSceneGenerator
from repro.segmentation.sequence import SequenceConfig

#: Small spatial size used throughout the tests to keep them fast.
TEST_HEIGHT = 48
TEST_WIDTH = 96


@pytest.fixture(scope="session")
def label_space():
    """The Cityscapes-like 19-class label space."""
    return cityscapes_label_space()


@pytest.fixture(scope="session")
def scene_config():
    """A small scene configuration shared by most tests."""
    return SceneConfig(height=TEST_HEIGHT, width=TEST_WIDTH)


@pytest.fixture(scope="session")
def scene_generator(scene_config):
    """A deterministic street-scene generator."""
    return StreetSceneGenerator(config=scene_config, random_state=123)


@pytest.fixture(scope="session")
def scene(scene_generator):
    """One generated street scene."""
    return scene_generator.generate(0)


@pytest.fixture(scope="session")
def scenes(scene_generator):
    """Eight generated street scenes."""
    return scene_generator.generate_many(8)


@pytest.fixture(scope="session")
def mobilenet_network(label_space):
    """Simulated weaker network (MobilenetV2-like profile)."""
    return SimulatedSegmentationNetwork(
        mobilenetv2_profile(), label_space=label_space, random_state=7
    )


@pytest.fixture(scope="session")
def xception_network(label_space):
    """Simulated stronger network (Xception65-like profile)."""
    return SimulatedSegmentationNetwork(
        xception65_profile(), label_space=label_space, random_state=8
    )


@pytest.fixture(scope="session")
def probability_field(mobilenet_network, scene):
    """Softmax field of the weaker network on the shared scene."""
    return mobilenet_network.predict_probabilities(scene.labels, index=0)


@pytest.fixture(scope="session")
def extractor(label_space):
    """Segment metrics extractor."""
    return SegmentMetricsExtractor(label_space=label_space)


@pytest.fixture(scope="session")
def image_metrics(extractor, probability_field, scene):
    """Full extraction result (dataset + segmentations) for the shared scene."""
    return extractor.extract_full(probability_field, gt_labels=scene.labels, image_id="shared")


@pytest.fixture(scope="session")
def metrics_dataset(extractor, mobilenet_network, scenes):
    """Metric dataset pooled over eight scenes (with IoU targets)."""
    parts = []
    for index, scene in enumerate(scenes):
        probs = mobilenet_network.predict_probabilities(scene.labels, index=index)
        parts.append(extractor.extract(probs, gt_labels=scene.labels, image_id=f"img{index}"))
    from repro.core.dataset import MetricsDataset

    return MetricsDataset.concatenate(parts)


@pytest.fixture(scope="session")
def cityscapes_like(scene_config):
    """A small Cityscapes-like dataset with train and val splits."""
    return CityscapesLikeDataset(
        n_train=6, n_val=4, scene_config=scene_config, random_state=11
    )


@pytest.fixture(scope="session")
def kitti_like(scene_config):
    """A small KITTI-like video dataset with sparse ground truth."""
    return KittiLikeDataset(
        n_sequences=2,
        sequence_config=SequenceConfig(n_frames=6, scene_config=scene_config),
        labeled_stride=2,
        random_state=13,
    )


@pytest.fixture(scope="session")
def metaseg_pipeline(mobilenet_network, label_space):
    """MetaSeg pipeline bound to the weaker network."""
    return MetaSegPipeline(mobilenet_network, label_space=label_space)


@pytest.fixture
def rng():
    """A fresh deterministic random generator for individual tests."""
    return np.random.default_rng(99)
