"""Fixture test tree: exercises only _reference_bar (by registry name)."""

GATED = ["_reference_bar"]
