"""Fixture source tree: one gated and one orphaned reference function."""


def _reference_foo(values):
    return sorted(values)


def _reference_bar(values):
    return list(reversed(values))
