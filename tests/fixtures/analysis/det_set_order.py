"""Known-bad fixture: set iteration flowing into ordered output (det-set-order)."""


def ordered(items):
    chosen = set(items)
    return list(chosen)
