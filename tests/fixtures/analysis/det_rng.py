"""Known-bad fixture: process-global randomness (det-rng)."""

import random


def draw():
    return random.random()
