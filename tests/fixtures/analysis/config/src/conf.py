"""Fixture config schema: a tiny ExperimentConfig plus a dead knob."""

from dataclasses import dataclass, field


@dataclass
class TrainConfig:
    epochs: int = 1
    rate: float = 0.1


@dataclass
class UnusedConfig:
    ghost: int = 0


@dataclass
class ExperimentConfig:
    kind: str = "demo"
    seed: int = 0
    train: TrainConfig = field(default_factory=TrainConfig)


def consume(config):
    return (config.kind, config.seed, config.train.epochs, config.train.rate)
