"""Known-bad fixture: to_state misses an __init__ attribute (state-schema)."""


class Model:
    def __init__(self, weights, bias):
        self.weights = weights
        self.bias = bias

    def to_state(self):
        return {"weights": self.weights}

    @classmethod
    def from_state(cls, state):
        return cls(state["weights"], 0.0)
