"""Known-bad fixture: builtin hash() on a string (det-hash)."""


def key_of(name):
    return hash(name)
