"""Known-bad fixture: unsorted filesystem enumeration (det-listdir)."""

import os


def names(root):
    out = []
    for name in os.listdir(root):
        out.append(name)
    return out
