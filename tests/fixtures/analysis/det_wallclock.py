"""Known-bad fixture: wall-clock read in a computed result (det-wallclock)."""

import time


def stamp():
    return time.time()
