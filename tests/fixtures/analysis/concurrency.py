"""Known-bad fixture: unguarded shared state (concurrency-shared-state)."""

import threading


class Counter:
    def __init__(self):
        self.total = 0
        self.lock = threading.Lock()

    def bump(self):
        self.total += 1
