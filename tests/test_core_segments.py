"""Tests for repro.core.segments."""

import numpy as np
import pytest

from repro.core.segments import (
    extract_segments,
    false_negative_segments,
    false_positive_segments,
    segment_iou,
    segment_ious,
    segment_precision_recall,
)


def _simple_pair():
    """A small handcrafted GT / prediction pair with known IoU values."""
    gt = np.zeros((6, 8), dtype=int)
    gt[1:4, 1:4] = 1          # a 3x3 object of class 1
    pred = np.zeros((6, 8), dtype=int)
    pred[1:4, 2:5] = 1        # shifted by one column: 6 of 9+3 pixels overlap
    pred[5, 6:8] = 2          # hallucinated class-2 segment (false positive)
    return gt, pred


class TestExtractSegments:
    def test_counts_and_classes(self):
        gt, pred = _simple_pair()
        seg = extract_segments(pred)
        classes = sorted(info.class_id for info in seg.segments.values())
        assert classes == [0, 1, 2]
        assert seg.n_segments == 3

    def test_sizes_sum_to_pixels(self):
        gt, _ = _simple_pair()
        seg = extract_segments(gt)
        assert sum(info.size for info in seg.segments.values()) == gt.size

    def test_mask_and_class_lookup(self):
        gt, _ = _simple_pair()
        seg = extract_segments(gt)
        for sid in seg.segment_ids():
            mask = seg.mask(sid)
            assert mask.sum() == seg.segments[sid].size
            assert np.unique(gt[mask]).tolist() == [seg.class_of(sid)]

    def test_unknown_segment_raises(self):
        gt, _ = _simple_pair()
        seg = extract_segments(gt)
        with pytest.raises(KeyError):
            seg.mask(999)
        with pytest.raises(KeyError):
            seg.class_of(999)

    def test_segments_of_class(self):
        gt, _ = _simple_pair()
        seg = extract_segments(gt)
        ids = seg.segments_of_class(1)
        assert len(ids) == 1
        assert seg.segments[ids[0]].size == 9

    def test_ignore_pixels_excluded(self):
        gt, _ = _simple_pair()
        gt_with_ignore = gt.copy()
        gt_with_ignore[0, :] = -1
        seg = extract_segments(gt_with_ignore)
        assert np.all(seg.components[0, :] == 0)

    def test_centroid_inside_bounding_box(self, image_metrics):
        prediction = image_metrics.prediction
        for info in prediction.segments.values():
            top, left, bottom, right = info.bounding_box
            assert top <= info.centroid[0] <= bottom
            assert left <= info.centroid[1] <= right


class TestSegmentIoU:
    def test_known_overlap(self):
        gt, pred = _simple_pair()
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt)
        class1_id = prediction.segments_of_class(1)[0]
        value = segment_iou(prediction, ground_truth, class1_id)
        # Intersection 6 pixels, union 12 pixels.
        assert abs(value - 0.5) < 1e-12

    def test_false_positive_has_zero_iou(self):
        gt, pred = _simple_pair()
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt)
        class2_id = prediction.segments_of_class(2)[0]
        assert segment_iou(prediction, ground_truth, class2_id) == 0.0

    def test_perfect_prediction_all_ones(self):
        gt, _ = _simple_pair()
        prediction = extract_segments(gt)
        ground_truth = extract_segments(gt)
        ious = segment_ious(prediction, ground_truth)
        assert all(abs(v - 1.0) < 1e-12 for v in ious.values())

    def test_all_predicted_segments_have_iou(self, image_metrics):
        from repro.core.segments import segment_ious

        ious = segment_ious(image_metrics.prediction, image_metrics.ground_truth)
        assert set(ious) == set(image_metrics.prediction.segment_ids())
        assert all(0.0 <= v <= 1.0 for v in ious.values())

    def test_ignore_pixels_excluded_from_union(self):
        gt = np.zeros((4, 4), dtype=int)
        gt[0:2, 0:2] = 1
        gt[0, 0] = -1  # one GT pixel unlabeled
        pred = np.zeros((4, 4), dtype=int)
        pred[0:2, 0:2] = 1
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt)
        class1_id = prediction.segments_of_class(1)[0]
        value = segment_iou(prediction, ground_truth, class1_id)
        assert abs(value - 1.0) < 1e-12

    def test_multiple_gt_components_union(self):
        # One predicted segment spanning two GT components of the same class.
        gt = np.zeros((3, 7), dtype=int)
        gt[1, 1:3] = 1
        gt[1, 4:6] = 1
        pred = np.zeros((3, 7), dtype=int)
        pred[1, 1:6] = 1
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt)
        class1_id = prediction.segments_of_class(1)[0]
        value = segment_iou(prediction, ground_truth, class1_id)
        # Intersection 4, union 5.
        assert abs(value - 0.8) < 1e-12


class TestFalsePositivesNegatives:
    def test_detects_hallucination_as_fp(self):
        gt, pred = _simple_pair()
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt)
        fps = false_positive_segments(prediction, ground_truth)
        fp_classes = {prediction.segments[sid].class_id for sid in fps}
        assert 2 in fp_classes

    def test_detects_missed_object_as_fn(self):
        gt, _ = _simple_pair()
        pred_missing = np.zeros_like(gt)  # object of class 1 completely missed
        prediction = extract_segments(pred_missing)
        ground_truth = extract_segments(gt)
        fns = false_negative_segments(prediction, ground_truth)
        fn_classes = {ground_truth.segments[sid].class_id for sid in fns}
        assert 1 in fn_classes

    def test_perfect_prediction_no_errors(self):
        gt, _ = _simple_pair()
        prediction = extract_segments(gt)
        ground_truth = extract_segments(gt)
        assert false_positive_segments(prediction, ground_truth) == []
        assert false_negative_segments(prediction, ground_truth) == []


class TestSegmentPrecisionRecall:
    def test_perfect_prediction(self):
        gt, _ = _simple_pair()
        segmentation = extract_segments(gt)
        precision, recall = segment_precision_recall(segmentation, segmentation, class_ids=[1])
        assert all(v == 1.0 for v in precision.values())
        assert all(v == 1.0 for v in recall.values())

    def test_partial_overlap_values(self):
        gt, pred = _simple_pair()
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt)
        precision, recall = segment_precision_recall(prediction, ground_truth, class_ids=[1])
        # Predicted class-1 segment: 9 pixels, 6 on GT class 1.
        assert abs(list(precision.values())[0] - 6 / 9) < 1e-12
        # GT class-1 segment: 9 pixels, 6 recovered.
        assert abs(list(recall.values())[0] - 6 / 9) < 1e-12

    def test_restricted_to_requested_classes(self):
        gt, pred = _simple_pair()
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt)
        precision, recall = segment_precision_recall(prediction, ground_truth, class_ids=[2])
        assert all(prediction.segments[sid].class_id == 2 for sid in precision)
        assert recall == {}  # no GT segment of class 2
