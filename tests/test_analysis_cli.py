"""Tests for ``python -m repro analyze``: the CLI contract of the linter.

Exit codes (0 clean / 1 findings / 2 usage errors), one-line diagnostics,
``--json`` machine output, parent-directory creation for ``--output`` and
the ``--baseline`` / ``--write-baseline`` workflow.
"""

import json
from pathlib import Path

from repro.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def analyze_args(paths, tmp_path, *extra):
    """CLI argv with the context dirs pointed at nothing (isolation)."""
    return [
        "analyze",
        *[str(p) for p in paths],
        "--tests", str(tmp_path / "no-tests"),
        "--configs", str(tmp_path / "no-configs"),
        *extra,
    ]


def write_clean(tmp_path):
    src = tmp_path / "clean.py"
    src.write_text("def double(x):\n    return 2 * x\n")
    return src


def write_bad(tmp_path):
    src = tmp_path / "bad.py"
    src.write_text("def key_of(name):\n    return hash(name)\n")
    return src


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        code = main(analyze_args([write_clean(tmp_path)], tmp_path))
        assert code == 0
        out = capsys.readouterr().out
        assert "analyze: clean in 1 files" in out

    def test_findings_exit_one_with_one_line_diagnostics(self, tmp_path, capsys):
        src = write_bad(tmp_path)
        code = main(analyze_args([src], tmp_path))
        assert code == 1
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if "[det-hash]" in line]
        assert len(lines) == 1
        assert lines[0].startswith(f"{src.name}:2: [det-hash]") or ":2: [det-hash]" in lines[0]
        assert "analyze: 1 finding(s)" in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        code = main(analyze_args([tmp_path / "absent"], tmp_path))
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "\n" == err[err.index("\n"):]  # single line

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        code = main(
            analyze_args([write_clean(tmp_path)], tmp_path, "--rules", "det-nope")
        )
        assert code == 2
        assert "unknown analysis rule" in capsys.readouterr().err

    def test_rule_selection_runs_only_named_rules(self, tmp_path, capsys):
        src = write_bad(tmp_path)
        code = main(
            analyze_args([src], tmp_path, "--rules", "det-wallclock")
        )
        assert code == 0  # det-hash did not run
        assert "1 rules" in capsys.readouterr().out


class TestJsonAndOutput:
    def test_json_output_parses(self, tmp_path, capsys):
        src = write_bad(tmp_path)
        code = main(analyze_args([src], tmp_path, "--json"))
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["n_findings"] == 1
        finding = payload["findings"][0]
        assert finding["rule"] == "det-hash"
        assert finding["line"] == 2
        assert finding["hint"]

    def test_output_creates_parent_directories(self, tmp_path, capsys):
        src = write_clean(tmp_path)
        out_file = tmp_path / "deep" / "nested" / "findings.json"
        code = main(analyze_args([src], tmp_path, "--output", str(out_file)))
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["clean"] is True
        assert f"findings written to {out_file}" in capsys.readouterr().out

    def test_unwritable_output_is_usage_error(self, tmp_path, capsys):
        src = write_clean(tmp_path)
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        code = main(
            analyze_args([src], tmp_path, "--output", str(blocker / "x.json"))
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "det-hash" in out
        assert "concurrency-shared-state" in out
        assert "always on" in out


class TestBaselineWorkflow:
    def test_write_baseline_requires_baseline(self, tmp_path, capsys):
        src = write_bad(tmp_path)
        code = main(analyze_args([src], tmp_path, "--write-baseline"))
        assert code == 2
        assert "--write-baseline requires --baseline" in capsys.readouterr().err

    def test_baseline_round_trip(self, tmp_path, capsys):
        src = write_bad(tmp_path)
        baseline = tmp_path / "ci" / "baseline.json"

        # 1. Accept the current findings (parent dir is created).
        code = main(
            analyze_args(
                [src], tmp_path,
                "--baseline", str(baseline), "--write-baseline",
            )
        )
        assert code == 0
        assert "baseline written" in capsys.readouterr().out
        assert len(json.loads(baseline.read_text())["findings"]) == 1

        # 2. With the baseline, the unchanged tree is clean (exit 0).
        code = main(analyze_args([src], tmp_path, "--baseline", str(baseline)))
        assert code == 0
        assert "1 baselined" in capsys.readouterr().out

        # 3. After the fix, the stale entry itself fails the run ...
        src.write_text("def key_of(name):\n    return len(name)\n")
        code = main(analyze_args([src], tmp_path, "--baseline", str(baseline)))
        assert code == 1
        assert "stale-baseline" in capsys.readouterr().out

        # 4. ... until the baseline is rewritten, now empty.
        code = main(
            analyze_args(
                [src], tmp_path,
                "--baseline", str(baseline), "--write-baseline",
            )
        )
        assert code == 0
        capsys.readouterr()
        assert json.loads(baseline.read_text())["findings"] == []

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        src = write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{}")
        code = main(analyze_args([src], tmp_path, "--baseline", str(baseline)))
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSuppressionThroughCli:
    def test_suppressed_tree_reports_counts(self, tmp_path, capsys):
        src = tmp_path / "mod.py"
        src.write_text(
            "def key_of(name):\n"
            "    return hash(name)  # repro: allow[det-hash] -- demo waiver\n"
        )
        code = main(analyze_args([src], tmp_path))
        assert code == 0
        assert "1 suppressed" in capsys.readouterr().out

    def test_real_tree_gate_via_cli(self, capsys):
        """What scripts/ci.sh runs: the real tree, no baseline, exit 0."""
        repo = Path(__file__).parent.parent
        code = main(["analyze", str(repo / "src" / "repro")])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "clean" in out
