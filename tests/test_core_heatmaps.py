"""Tests for repro.core.heatmaps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heatmaps import (
    dispersion_heatmaps,
    entropy_heatmap,
    probability_margin_heatmap,
    variation_ratio_heatmap,
)


def _one_hot_field(height, width, n_classes, class_id=0):
    field = np.zeros((height, width, n_classes))
    field[..., class_id] = 1.0
    return field


def _uniform_field(height, width, n_classes):
    return np.full((height, width, n_classes), 1.0 / n_classes)


class TestEntropyHeatmap:
    def test_one_hot_has_zero_entropy(self):
        np.testing.assert_allclose(entropy_heatmap(_one_hot_field(3, 4, 5)), 0.0, atol=1e-9)

    def test_uniform_has_maximal_entropy(self):
        np.testing.assert_allclose(entropy_heatmap(_uniform_field(3, 4, 5)), 1.0, atol=1e-9)

    def test_range(self, probability_field):
        heatmap = entropy_heatmap(probability_field)
        assert heatmap.min() >= 0.0
        assert heatmap.max() <= 1.0

    def test_invalid_field_raises(self):
        with pytest.raises(ValueError):
            entropy_heatmap(np.ones((3, 3, 2)))


class TestVariationRatio:
    def test_one_hot_zero(self):
        np.testing.assert_allclose(variation_ratio_heatmap(_one_hot_field(2, 2, 4)), 0.0)

    def test_uniform_maximal(self):
        expected = 1.0 - 1.0 / 4
        np.testing.assert_allclose(variation_ratio_heatmap(_uniform_field(2, 2, 4)), expected)


class TestProbabilityMargin:
    def test_one_hot_zero(self):
        np.testing.assert_allclose(probability_margin_heatmap(_one_hot_field(2, 2, 4)), 0.0)

    def test_two_way_tie_is_one(self):
        field = np.zeros((1, 1, 4))
        field[0, 0, 0] = 0.5
        field[0, 0, 1] = 0.5
        np.testing.assert_allclose(probability_margin_heatmap(field), 1.0)

    def test_known_value(self):
        field = np.zeros((1, 1, 3))
        field[0, 0] = [0.7, 0.2, 0.1]
        np.testing.assert_allclose(probability_margin_heatmap(field), 1.0 - 0.5)


class TestDispersionHeatmaps:
    def test_keys_and_shapes(self, probability_field):
        maps = dispersion_heatmaps(probability_field)
        assert set(maps) == {"E", "M", "V"}
        for heatmap in maps.values():
            assert heatmap.shape == probability_field.shape[:2]

    def test_boundaries_more_uncertain_than_interiors(self, probability_field, scene):
        from repro.utils.arrays import boundary_mask

        entropy = entropy_heatmap(probability_field)
        boundary = boundary_mask(scene.labels)
        assert entropy[boundary].mean() > entropy[~boundary].mean()


@given(
    n_classes=st.integers(2, 8),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=25, deadline=None)
def test_property_dispersion_measures_ordered(n_classes, seed):
    """V <= E-like relationships and all measures in [0, 1] for random fields."""
    rng = np.random.default_rng(seed)
    field = rng.uniform(size=(4, 5, n_classes))
    field = field / field.sum(axis=2, keepdims=True)
    entropy = entropy_heatmap(field)
    variation = variation_ratio_heatmap(field)
    margin = probability_margin_heatmap(field)
    for heatmap in (entropy, variation, margin):
        assert np.all((heatmap >= -1e-12) & (heatmap <= 1.0 + 1e-12))
    # The probability margin is always at least the variation ratio
    # (1 - p1 + p2 >= 1 - p1).
    assert np.all(margin >= variation - 1e-12)
