"""Tests for repro.core.metrics and repro.core.dataset."""

import numpy as np
import pytest

from repro.core.dataset import MetricsDataset
from repro.core.heatmaps import _reference_dispersion_heatmaps, dispersion_heatmaps
from repro.core.metrics import METRIC_GROUPS, SegmentMetricsExtractor
from repro.core.segments import extract_segments
from repro.evaluation.regression import pearson_correlation


def _random_softmax_field(seed: int, n_classes: int):
    """Seeded random softmax field whose argmax forms chunky segments."""
    rng = np.random.default_rng(seed)
    height = int(rng.integers(10, 44))
    width = int(rng.integers(10, 44))
    cell = int(rng.integers(2, 7))
    grid = rng.integers(
        0, n_classes, size=(height // cell + 1, width // cell + 1)
    )
    bias = np.kron(grid, np.ones((cell, cell)))[:height, :width].astype(np.int64)
    logits = rng.normal(0.0, 1.0, size=(height, width, n_classes))
    logits[np.arange(height)[:, None], np.arange(width)[None, :], bias] += rng.uniform(1.0, 5.0)
    probs = np.exp(logits)
    probs /= probs.sum(axis=2, keepdims=True)
    return probs


class TestSegmentMetricsExtractor:
    def test_feature_names_consistent(self, extractor, image_metrics):
        names = extractor.feature_names()
        assert image_metrics.dataset.feature_names == names
        assert image_metrics.dataset.features.shape[1] == len(names)

    def test_one_row_per_predicted_segment(self, image_metrics):
        assert len(image_metrics.dataset) == image_metrics.prediction.n_segments

    def test_metric_groups_are_subsets_of_features(self, extractor):
        names = set(extractor.feature_names())
        for group, members in METRIC_GROUPS.items():
            assert set(members).issubset(names), group

    def test_segment_sizes_match_segmentation(self, image_metrics):
        dataset = image_metrics.dataset
        sizes = dataset.feature("S")
        for row, sid in enumerate(dataset.segment_ids):
            assert sizes[row] == image_metrics.prediction.segments[int(sid)].size

    def test_size_decomposition(self, image_metrics):
        dataset = image_metrics.dataset
        np.testing.assert_allclose(
            dataset.feature("S"), dataset.feature("S_in") + dataset.feature("S_bd")
        )

    def test_dispersion_means_in_unit_interval(self, image_metrics):
        dataset = image_metrics.dataset
        for name in ("E_mean", "M_mean", "V_mean", "E_bd_mean", "pmax_mean"):
            values = dataset.feature(name)
            assert values.min() >= -1e-9
            assert values.max() <= 1.0 + 1e-9

    def test_class_probabilities_sum_to_one(self, image_metrics, label_space):
        dataset = image_metrics.dataset
        cprob_names = [f"cprob_{spec.name.replace(' ', '_')}" for spec in label_space]
        total = sum(dataset.feature(name) for name in cprob_names)
        np.testing.assert_allclose(total, 1.0, atol=1e-9)

    def test_predicted_class_feature_matches_class_ids(self, image_metrics):
        dataset = image_metrics.dataset
        np.testing.assert_array_equal(
            dataset.feature("predicted_class").astype(int), dataset.class_ids
        )

    def test_centroids_normalised(self, image_metrics):
        dataset = image_metrics.dataset
        assert dataset.feature("centroid_row").max() <= 1.0
        assert dataset.feature("centroid_col").max() <= 1.0

    def test_iou_targets_available_with_gt(self, image_metrics):
        assert image_metrics.dataset.has_targets
        iou = image_metrics.dataset.target_iou()
        assert np.all((iou >= 0) & (iou <= 1))

    def test_extraction_without_gt_has_no_targets(self, extractor, probability_field):
        dataset = extractor.extract(probability_field, gt_labels=None, image_id="nogt")
        assert not dataset.has_targets
        with pytest.raises(ValueError):
            dataset.target_iou()

    def test_entropy_correlates_negatively_with_iou(self, metrics_dataset):
        correlation = pearson_correlation(
            metrics_dataset.feature("E_mean"), metrics_dataset.target_iou()
        )
        assert correlation < -0.3

    def test_class_count_mismatch_raises(self, extractor):
        bad = np.full((8, 8, 5), 0.2)
        with pytest.raises(ValueError):
            extractor.extract(bad)

    def test_shape_mismatch_raises(self, extractor, probability_field):
        with pytest.raises(ValueError):
            extractor.extract(probability_field, gt_labels=np.zeros((2, 2), dtype=int))

    def test_invalid_connectivity(self, label_space):
        with pytest.raises(ValueError):
            SegmentMetricsExtractor(label_space=label_space, connectivity=5)


class TestFusedExtractionParity:
    """The fused single-pass extraction is bitwise-identical to the seed path."""

    @pytest.mark.fuzz
    @pytest.mark.parametrize("seed", range(25))
    def test_fused_features_bitwise_equal_seed(self, extractor, label_space, seed):
        probs = _random_softmax_field(seed, label_space.n_classes)
        prediction = extract_segments(np.argmax(probs, axis=2).astype(np.int64))
        fused = extractor._compute_features(probs, prediction)
        reference = extractor._reference_compute_features(probs, prediction)
        assert fused.shape == reference.shape
        mismatch = np.nonzero(fused != reference)
        assert np.array_equal(fused, reference), (
            f"seed={seed}: {mismatch[0].size} mismatching entries, first at "
            f"row {mismatch[0][:1]}, column {mismatch[1][:1]}"
        )

    def test_fused_parity_on_network_field(self, extractor, probability_field):
        """Parity also holds on the simulated network's softmax output."""
        prediction = extract_segments(
            np.argmax(probability_field, axis=2).astype(np.int64)
        )
        probs = np.asarray(probability_field, dtype=np.float64)
        assert np.array_equal(
            extractor._compute_features(probs, prediction),
            extractor._reference_compute_features(probs, prediction),
        )

    @pytest.mark.fuzz
    @pytest.mark.parametrize("seed", range(10))
    def test_fused_heatmaps_bitwise_equal_seed(self, seed):
        probs = _random_softmax_field(1000 + seed, 7)
        fused = dispersion_heatmaps(probs)
        reference = _reference_dispersion_heatmaps(probs)
        assert set(fused) == set(reference)
        for key in reference:
            assert np.array_equal(fused[key], reference[key]), f"seed={seed} map={key}"


class TestMetricsDataset:
    def test_basic_invariants(self, metrics_dataset):
        assert len(metrics_dataset) == metrics_dataset.features.shape[0]
        assert metrics_dataset.n_features == len(metrics_dataset.feature_names)

    def test_target_iou0_binary(self, metrics_dataset):
        targets = metrics_dataset.target_iou0()
        assert set(np.unique(targets)).issubset({0, 1})
        assert abs(
            metrics_dataset.false_positive_fraction() - float(np.mean(targets == 0))
        ) < 1e-12

    def test_feature_lookup(self, metrics_dataset):
        column = metrics_dataset.feature("S")
        np.testing.assert_array_equal(
            column, metrics_dataset.feature_matrix(["S"]).ravel()
        )

    def test_unknown_feature_raises(self, metrics_dataset):
        with pytest.raises(KeyError):
            metrics_dataset.feature("does_not_exist")

    def test_subset(self, metrics_dataset):
        subset = metrics_dataset.subset(np.arange(5))
        assert len(subset) == 5
        np.testing.assert_array_equal(subset.features, metrics_dataset.features[:5])

    def test_split_partitions_rows(self, metrics_dataset):
        train, test = metrics_dataset.split((0.8, 0.2), random_state=0)
        assert len(train) + len(test) == len(metrics_dataset)
        assert abs(len(train) - round(0.8 * len(metrics_dataset))) <= 1

    def test_split_deterministic(self, metrics_dataset):
        a_train, _ = metrics_dataset.split((0.8, 0.2), random_state=3)
        b_train, _ = metrics_dataset.split((0.8, 0.2), random_state=3)
        np.testing.assert_array_equal(a_train.features, b_train.features)

    def test_concatenate_roundtrip(self, metrics_dataset):
        parts = metrics_dataset.per_image()
        assert len(parts) == 8
        rebuilt = MetricsDataset.concatenate(parts)
        assert len(rebuilt) == len(metrics_dataset)
        np.testing.assert_allclose(np.sort(rebuilt.feature("S")),
                                   np.sort(metrics_dataset.feature("S")))

    def test_concatenate_mismatched_features_raises(self, metrics_dataset):
        other = MetricsDataset(
            features=np.zeros((2, 2)),
            feature_names=["a", "b"],
            segment_ids=np.arange(2),
            class_ids=np.zeros(2, dtype=int),
            image_ids=np.array(["x", "x"], dtype=object),
            iou=np.zeros(2),
        )
        with pytest.raises(ValueError):
            MetricsDataset.concatenate([metrics_dataset, other])

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            MetricsDataset.concatenate([])

    def test_with_iou(self, extractor, probability_field):
        dataset = extractor.extract(probability_field, gt_labels=None, image_id="nogt")
        pseudo = np.linspace(0, 1, len(dataset))
        updated = dataset.with_iou(pseudo)
        assert updated.has_targets
        np.testing.assert_allclose(updated.target_iou(), pseudo)

    def test_invalid_iou_range_rejected(self, metrics_dataset):
        with pytest.raises(ValueError):
            metrics_dataset.with_iou(np.full(len(metrics_dataset), 2.0))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MetricsDataset(
                features=np.zeros((3, 2)),
                feature_names=["a", "b"],
                segment_ids=np.arange(2),
                class_ids=np.zeros(3, dtype=int),
                image_ids=np.array(["x"] * 3, dtype=object),
            )

    def test_wrong_feature_name_count_rejected(self):
        with pytest.raises(ValueError):
            MetricsDataset(
                features=np.zeros((3, 2)),
                feature_names=["a"],
                segment_ids=np.arange(3),
                class_ids=np.zeros(3, dtype=int),
                image_ids=np.array(["x"] * 3, dtype=object),
            )
