"""Tests for repro.decision.priors and repro.decision.rules."""

import numpy as np
import pytest

from repro.decision.priors import PixelPriorEstimator, uniform_priors
from repro.decision.rules import (
    apply_rule,
    bayes_rule,
    cost_based_rule,
    interpolated_rule,
    inverse_prior_costs,
    maximum_likelihood_rule,
)


class TestUniformPriors:
    def test_shape_and_normalisation(self):
        priors = uniform_priors(4, 5, 19)
        assert priors.shape == (4, 5, 19)
        np.testing.assert_allclose(priors.sum(axis=2), 1.0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            uniform_priors(0, 5, 19)


class TestPixelPriorEstimator:
    def test_priors_normalised(self, cityscapes_like):
        estimator = PixelPriorEstimator().fit(
            s.labels for s in cityscapes_like.train_samples()
        )
        priors = estimator.priors()
        np.testing.assert_allclose(priors.sum(axis=2), 1.0, atol=1e-9)
        assert priors.min() > 0.0

    def test_person_prior_concentrated_below_horizon(self, cityscapes_like, label_space):
        estimator = PixelPriorEstimator().fit(
            s.labels for s in cityscapes_like.train_samples()
        )
        person_prior = estimator.class_prior("person")
        height = person_prior.shape[0]
        upper = person_prior[: height // 3].mean()
        lower = person_prior[height // 2 :].mean()
        assert lower > upper  # persons occur in the lower image half (Fig. 4)

    def test_category_prior_is_sum_of_classes(self, cityscapes_like, label_space):
        estimator = PixelPriorEstimator().fit(
            s.labels for s in cityscapes_like.train_samples()
        )
        human = estimator.category_prior("human")
        person = estimator.class_prior("person")
        rider = estimator.class_prior("rider")
        np.testing.assert_allclose(human, person + rider, atol=1e-12)

    def test_global_frequencies_reflect_imbalance(self, cityscapes_like, label_space):
        estimator = PixelPriorEstimator().fit(
            s.labels for s in cityscapes_like.train_samples()
        )
        freqs = estimator.global_class_frequencies()
        assert freqs[label_space.id_of("road")] > freqs[label_space.id_of("person")]

    def test_partial_fit_equivalent_to_fit(self, cityscapes_like):
        samples = cityscapes_like.train_samples()[:3]
        batch = PixelPriorEstimator(spatial_sigma=0.0).fit(s.labels for s in samples)
        streaming = PixelPriorEstimator(spatial_sigma=0.0)
        for sample in samples:
            streaming.partial_fit(sample.labels)
        np.testing.assert_allclose(batch.priors(), streaming.priors())

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PixelPriorEstimator().priors()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PixelPriorEstimator(laplace_smoothing=0.0)
        with pytest.raises(ValueError):
            PixelPriorEstimator(spatial_sigma=-1.0)
        with pytest.raises(ValueError):
            PixelPriorEstimator(global_blend=1.0)

    def test_mismatched_shapes_raise(self, cityscapes_like):
        estimator = PixelPriorEstimator()
        estimator.partial_fit(cityscapes_like.train_sample(0).labels)
        with pytest.raises(ValueError):
            estimator.partial_fit(np.zeros((8, 8), dtype=int))

    def test_class_prior_by_id_and_name_agree(self, cityscapes_like, label_space):
        estimator = PixelPriorEstimator().fit(
            s.labels for s in cityscapes_like.train_samples()
        )
        np.testing.assert_allclose(
            estimator.class_prior("person"),
            estimator.class_prior(label_space.id_of("person")),
        )


class TestDecisionRules:
    def test_bayes_is_argmax(self, probability_field):
        np.testing.assert_array_equal(
            bayes_rule(probability_field), np.argmax(probability_field, axis=2)
        )

    def test_ml_with_uniform_priors_equals_bayes(self, probability_field):
        priors = uniform_priors(*probability_field.shape)
        np.testing.assert_array_equal(
            maximum_likelihood_rule(probability_field, priors), bayes_rule(probability_field)
        )

    def test_ml_with_global_prior_vector(self, probability_field):
        n_classes = probability_field.shape[2]
        priors = np.full(n_classes, 1.0 / n_classes)
        np.testing.assert_array_equal(
            maximum_likelihood_rule(probability_field, priors), bayes_rule(probability_field)
        )

    def test_ml_boosts_downweighted_class(self):
        probs = np.zeros((1, 1, 3))
        probs[0, 0] = [0.55, 0.40, 0.05]
        priors = np.array([0.90, 0.08, 0.02])
        assert bayes_rule(probs)[0, 0] == 0
        assert maximum_likelihood_rule(probs, priors)[0, 0] == 1

    def test_ml_shape_mismatch_raises(self, probability_field):
        with pytest.raises(ValueError):
            maximum_likelihood_rule(probability_field, np.ones(5))
        with pytest.raises(ValueError):
            maximum_likelihood_rule(probability_field, -np.ones(probability_field.shape[2]))

    def test_cost_rule_with_uniform_costs_equals_bayes(self, probability_field):
        n_classes = probability_field.shape[2]
        costs = np.ones((n_classes, n_classes))
        np.testing.assert_array_equal(
            cost_based_rule(probability_field, costs), bayes_rule(probability_field)
        )

    def test_cost_rule_with_inverse_prior_costs_equals_ml(self):
        rng = np.random.default_rng(0)
        probs = rng.uniform(size=(4, 5, 3))
        probs /= probs.sum(axis=2, keepdims=True)
        priors = np.array([0.7, 0.2, 0.1])
        costs = np.zeros((3, 3))
        for predicted in range(3):
            for actual in range(3):
                if predicted != actual:
                    costs[predicted, actual] = 1.0 / priors[actual]
        from_costs = cost_based_rule(probs, costs)
        from_ml = maximum_likelihood_rule(probs, priors)
        np.testing.assert_array_equal(from_costs, from_ml)

    def test_inverse_prior_costs_values(self):
        priors = np.array([0.5, 0.25])
        np.testing.assert_allclose(inverse_prior_costs(priors), [2.0, 4.0])
        with pytest.raises(ValueError):
            inverse_prior_costs(np.array([-0.1, 1.1]))

    def test_cost_rule_invalid_costs(self, probability_field):
        with pytest.raises(ValueError):
            cost_based_rule(probability_field, np.ones((3, 3)))
        with pytest.raises(ValueError):
            cost_based_rule(probability_field, -np.ones((19, 19)))

    def test_interpolated_rule_endpoints(self, probability_field, cityscapes_like):
        estimator = PixelPriorEstimator().fit(
            s.labels for s in cityscapes_like.train_samples()
        )
        priors = estimator.priors()[: probability_field.shape[0], : probability_field.shape[1]]
        zero = interpolated_rule(probability_field, priors, 0.0)
        one = interpolated_rule(probability_field, priors, 1.0)
        np.testing.assert_array_equal(zero, bayes_rule(probability_field))
        np.testing.assert_array_equal(one, maximum_likelihood_rule(probability_field, priors))

    def test_interpolated_invalid_strength(self, probability_field):
        with pytest.raises(ValueError):
            interpolated_rule(probability_field, np.ones(19) / 19, 1.5)

    def test_apply_rule_dispatch(self, probability_field):
        np.testing.assert_array_equal(
            apply_rule(probability_field, "bayes"), bayes_rule(probability_field)
        )
        with pytest.raises(ValueError):
            apply_rule(probability_field, "ml")  # priors missing
        with pytest.raises(ValueError):
            apply_rule(probability_field, "unknown")
