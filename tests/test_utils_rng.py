"""Tests for repro.utils.rng."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import (
    as_rng,
    bootstrap_indices,
    derive_seed,
    shuffled_indices,
    spawn_rngs,
    split_indices,
)


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=10)
        b = as_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**6, size=20)
        b = as_rng(2).integers(0, 10**6, size=20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(3, 2)
        a = children[0].integers(0, 10**6, size=50)
        b = children[1].integers(0, 10**6, size=50)
        assert not np.array_equal(a, b)

    def test_reproducible_family(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(7, 3)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(7, 3)]
        assert first == second


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "scene", 3) == derive_seed(5, "scene", 3)

    def test_token_sensitivity(self):
        assert derive_seed(5, "scene", 3) != derive_seed(5, "scene", 4)

    def test_returns_non_negative_int(self):
        value = derive_seed(1, "x")
        assert isinstance(value, int)
        assert value >= 0


class TestShuffledIndices:
    def test_is_permutation(self):
        perm = shuffled_indices(20, 0)
        assert sorted(perm.tolist()) == list(range(20))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            shuffled_indices(-1)


class TestBootstrapIndices:
    def test_range_and_size(self):
        idx = bootstrap_indices(10, random_state=0)
        assert idx.shape == (10,)
        assert idx.min() >= 0 and idx.max() < 10

    def test_explicit_size(self):
        assert bootstrap_indices(10, size=25, random_state=0).shape == (25,)

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            bootstrap_indices(0)


class TestSplitIndices:
    def test_partition(self):
        groups = split_indices(100, [0.8, 0.2], random_state=0)
        combined = np.concatenate(groups)
        assert sorted(combined.tolist()) == list(range(100))
        assert len(groups[0]) == 80
        assert len(groups[1]) == 20

    def test_three_way(self):
        groups = split_indices(50, [0.7, 0.1, 0.2], random_state=1)
        assert sum(len(g) for g in groups) == 50

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            split_indices(10, [0.5, 0.6])
        with pytest.raises(ValueError):
            split_indices(10, [])
        with pytest.raises(ValueError):
            split_indices(10, [1.2, -0.2])

    @given(n=st.integers(min_value=1, max_value=300), seed=st.integers(0, 2**20))
    @settings(max_examples=25, deadline=None)
    def test_property_every_index_assigned_once(self, n, seed):
        groups = split_indices(n, [0.6, 0.4], random_state=seed)
        combined = sorted(np.concatenate(groups).tolist())
        assert combined == list(range(n))
