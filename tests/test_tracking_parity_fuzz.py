"""Parity-fuzz harness for the sparse contingency-table segment tracking.

Every case builds a seeded random video sequence — chunky segments that move
frame over frame, split, vanish and reappear, under both connectivities —
and asserts the vectorised :func:`match_segments` and a full
:class:`SegmentTracker` run are **bitwise-identical** to the retained
``_reference_match_segments`` per-segment-mask implementation: same match
dicts (including insertion order, which encodes the greedy tie-breaks), same
track assignments, same track histories.

Shift dicts deliberately include exact zeros (the contingency-table path),
arbitrary float shifts, integral shifts and half-integer shifts (exercising
numpy's banker's rounding, whose result depends on the parity of each pixel
coordinate).

A tracemalloc gate asserts the fast path's peak memory no longer scales with
``n_segments × H×W`` (the reference materialises one dense mask per current
segment before the pair loop even starts).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.segments import Segmentation, extract_segments
from repro.timedynamic.tracking import (
    SegmentTracker,
    _reference_match_segments,
    match_segments,
)

#: Number of generated fuzz cases per test.
N_CASES = 60


def _random_frames(seed: int):
    """A seeded random frame sequence plus the case's parameters."""
    rng = np.random.default_rng(seed)
    cell = int(rng.integers(3, 7))
    grid_h = int(rng.integers(4, 10))
    grid_w = int(rng.integers(4, 12))
    n_classes = int(rng.integers(2, 7))
    n_frames = int(rng.integers(2, 5))
    connectivity = 4 if rng.uniform() < 0.3 else 8

    base = np.kron(
        rng.integers(0, n_classes, size=(grid_h, grid_w)),
        np.ones((cell, cell), dtype=np.int64),
    ).astype(np.int64)
    height, width = base.shape
    frames = []
    for frame_index in range(n_frames):
        # Global motion plus per-frame clutter: rectangles overwrite moving
        # segments (splits/vanishes), occasional empty-ish frames.
        frame = np.roll(
            base,
            (frame_index * int(rng.integers(0, cell)), frame_index * int(rng.integers(-2, 3))),
            axis=(0, 1),
        ).copy()
        for _ in range(int(rng.integers(0, 4))):
            r0 = int(rng.integers(0, height))
            c0 = int(rng.integers(0, width))
            r1 = min(height, r0 + int(rng.integers(1, 2 * cell)))
            c1 = min(width, c0 + int(rng.integers(1, 2 * cell)))
            frame[r0:r1, c0:c1] = int(rng.integers(0, n_classes))
        if rng.uniform() < 0.05:
            frame[:, :] = 0
        frames.append(frame)
    return frames, connectivity, rng


def _random_shifts(segmentation: Segmentation, rng: np.random.Generator):
    """Random shift dict mixing zero, float, integral and half-integer shifts."""
    shifts = {}
    for segment_id in segmentation.segment_ids():
        u = rng.uniform()
        if u < 0.35:
            continue  # no entry: the (0.0, 0.0) default
        if u < 0.5:
            shifts[segment_id] = (0.0, 0.0)
        elif u < 0.65:
            shifts[segment_id] = (
                float(rng.integers(-4, 5)), float(rng.integers(-4, 5))
            )
        elif u < 0.8:
            # Half-integer shifts hit numpy's round-half-to-even, whose
            # result depends on each pixel coordinate's parity.
            shifts[segment_id] = (
                float(rng.integers(-3, 4)) + 0.5, float(rng.integers(-3, 4)) + 0.5
            )
        else:
            shifts[segment_id] = (
                float(rng.uniform(-6.0, 6.0)), float(rng.uniform(-6.0, 6.0))
            )
    return shifts


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(N_CASES))
def test_match_segments_parity(seed):
    frames, connectivity, rng = _random_frames(seed)
    segmentations = [extract_segments(f, connectivity=connectivity) for f in frames]
    min_overlap_fraction = [0.0, 0.1, 0.3][seed % 3]
    for previous, current in zip(segmentations, segmentations[1:]):
        shifts = _random_shifts(previous, rng)
        fast = match_segments(previous, current, shifts, min_overlap_fraction)
        reference = _reference_match_segments(
            previous, current, shifts, min_overlap_fraction
        )
        assert fast == reference, f"seed={seed}"
        # Insertion order encodes the greedy acceptance order.
        assert list(fast) == list(reference), f"seed={seed}"


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(N_CASES))
def test_tracker_parity(seed):
    frames, connectivity, _rng = _random_frames(seed)
    fast_tracker = SegmentTracker()
    reference_tracker = SegmentTracker(match_fn=_reference_match_segments)
    for frame in frames:
        # Separate Segmentation instances so the fast tracker's cached pixel
        # groups cannot leak into the reference run.
        fast_assignment = fast_tracker.update(
            extract_segments(frame, connectivity=connectivity)
        )
        reference_assignment = reference_tracker.update(
            extract_segments(frame, connectivity=connectivity)
        )
        assert fast_assignment == reference_assignment, f"seed={seed}"
    assert fast_tracker.n_tracks == reference_tracker.n_tracks
    assert fast_tracker.track_lengths() == reference_tracker.track_lengths()
    for track_id, track in fast_tracker.tracks.items():
        reference = reference_tracker.tracks[track_id]
        assert track.segment_history == reference.segment_history, f"seed={seed}"
        assert track.centroid_history == reference.centroid_history, f"seed={seed}"
        assert track.class_id == reference.class_id


@pytest.mark.fuzz
def test_track_of_matches_history_scan():
    """The frame → segment → track reverse index equals the old linear scan."""
    frames, connectivity, _rng = _random_frames(7)
    tracker = SegmentTracker()
    for frame in frames:
        tracker.update(extract_segments(frame, connectivity=connectivity))
    for frame_index in range(len(frames)):
        seen = set()
        for track in tracker.tracks.values():
            segment_id = track.segment_history.get(frame_index)
            if segment_id is not None:
                assert tracker.track_of(frame_index, segment_id) == track.track_id
                seen.add(segment_id)
        assert tracker.track_of(frame_index, 10**9) is None
        assert seen or tracker.track_of(frame_index, 1) is None


@pytest.mark.fuzz
def test_matching_peak_memory_does_not_scale_with_segments():
    """Peak tracking memory must stay far below n_segments × H×W.

    The reference pre-builds one dense boolean mask per current segment
    (``n_segments × H×W`` bytes) before the pair loop; the sparse fast path
    only ever holds O(H×W) index arrays and the n_prev × n_curr overlap
    table.
    """
    rng = np.random.default_rng(0)
    cell = 16
    grid = rng.integers(0, 8, size=(256 // cell, 512 // cell))
    base = np.kron(grid, np.ones((cell, cell), dtype=np.int64)).astype(np.int64)
    previous = extract_segments(base)
    current = extract_segments(np.roll(base, (3, -5), axis=(0, 1)))
    n_segments = min(previous.n_segments, current.n_segments)
    assert n_segments >= 100
    shifts = _random_shifts(previous, rng)
    frame_bytes = base.size  # one dense boolean mask

    match_segments(previous, current, shifts)  # warm caches outside the trace
    fresh_previous = extract_segments(base)
    tracemalloc.start()
    match_segments(fresh_previous, current, shifts)
    _size, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # The reference needs >= n_segments dense masks; allow the fast path a
    # generous fixed number of full-frame-sized arrays (argsort + pixel
    # groups + contingency codes are all O(H×W) int64).
    assert peak < 64 * frame_bytes, (
        f"peak {peak} bytes >= 64 frames; n_segments={n_segments}, "
        f"reference-style scaling would be {n_segments * frame_bytes}"
    )
    assert peak < n_segments * frame_bytes / 4
