"""Tests for repro.dispatch: protocol, coordinator, workers and the backend.

The dispatch layer's acceptance criterion mirrors the execution layer's:
the ``distributed`` backend must be **bitwise identical** to serial on all
three experiment kinds, under every failure mode.  This module covers the
healthy paths plus the structural failure modes (dedup, poison-shard
quarantine, inline degradation, version handshake); the seeded
kill/hang/delay plans live in ``test_dispatch_faults.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.config import ExperimentConfig
from repro.api.registry import EXECUTION_BACKENDS
from repro.api.runner import Runner
from repro.dispatch import (
    Coordinator,
    DispatchError,
    FrameBuffer,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    recv_message,
    send_message,
    worker_main,
)
from repro.dispatch.coordinator import backoff_jitter, resolve_callable

REPO_ROOT = Path(__file__).resolve().parent.parent

TINY_HEIGHT = 48
TINY_WIDTH = 96


def metaseg_payload(seed: int) -> dict:
    return {
        "kind": "metaseg", "seed": seed,
        "data": {"dataset": "cityscapes_like", "n_val": 5,
                 "height": TINY_HEIGHT, "width": TINY_WIDTH},
        "evaluation": {"n_runs": 2},
    }


def timedynamic_payload(seed: int) -> dict:
    return {
        "kind": "timedynamic", "seed": seed,
        "data": {"dataset": "kitti_like", "n_sequences": 2, "n_frames": 5,
                 "labeled_stride": 2, "height": TINY_HEIGHT, "width": TINY_WIDTH},
        "meta_models": {
            "classifiers": ["gradient_boosting"],
            "regressors": ["gradient_boosting"],
            "model_params": {"gradient_boosting": {"n_estimators": 4, "max_depth": 2}},
        },
        "evaluation": {"n_runs": 1, "n_frames_list": [0, 1], "compositions": ["R"]},
    }


def decision_payload(seed: int) -> dict:
    return {
        "kind": "decision", "seed": seed,
        "data": {"dataset": "cityscapes_like", "n_train": 4, "n_val": 4,
                 "height": TINY_HEIGHT, "width": TINY_WIDTH},
    }


PAYLOADS = {
    "metaseg": metaseg_payload,
    "timedynamic": timedynamic_payload,
    "decision": decision_payload,
}


def run_with_execution(payload: dict, execution: dict):
    config = ExperimentConfig.from_dict({**payload, "execution": execution})
    return Runner().run(config)


def assert_reports_identical(left, right, context: str):
    assert left.tables == right.tables, f"{context}: tables differ"
    assert left.provenance == right.provenance, f"{context}: provenance differs"


# Task functions for direct Coordinator tests.  Module-level so they resolve
# as "test_dispatch:<name>" inside fork-spawned workers (the test module is
# already in sys.modules when the worker forks).
def _square(spec):
    return spec["x"] * spec["x"]


def _poison(spec):
    raise ValueError(f"poison task {spec['x']}")


def _spawn_workers(coordinator, n, fault_plan=None):
    context = multiprocessing.get_context("fork")
    host, port = coordinator.address
    spawned = []
    for index in range(n):
        process = context.Process(
            target=worker_main,
            args=(host, port),
            kwargs={"worker_id": f"w{index}", "fault_plan": fault_plan},
            daemon=True,
        )
        process.start()
        spawned.append(process)
    return spawned


def _reap(spawned):
    for process in spawned:
        process.join(timeout=10.0)
    for process in spawned:
        if process.is_alive():
            process.terminate()
            process.join(timeout=10.0)


# ----------------------------------------------------------------- protocol --
class TestProtocol:
    def test_send_recv_round_trip(self):
        left, right = socket.socketpair()
        try:
            message = {"type": "task", "task": 3, "payload": [1.5, {"a": b"bytes"}]}
            send_message(left, message)
            assert recv_message(right) == message
        finally:
            left.close()
            right.close()

    def test_recv_none_on_clean_eof(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_message(right) is None
        finally:
            right.close()

    def test_recv_raises_on_mid_frame_eof(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame({"type": "request"})
            left.sendall(frame[: len(frame) - 2])
            left.close()
            with pytest.raises(ProtocolError):
                recv_message(right)
        finally:
            right.close()

    def test_frame_buffer_byte_by_byte(self):
        messages = [{"type": "request", "i": i} for i in range(3)]
        stream = b"".join(encode_frame(m) for m in messages)
        buffer = FrameBuffer()
        decoded = []
        for offset in range(len(stream)):
            decoded.extend(buffer.feed(stream[offset:offset + 1]))
        assert decoded == messages
        assert buffer.pending_bytes == 0

    def test_frame_buffer_multiple_frames_in_one_feed(self):
        messages = [{"a": 1}, {"b": 2}]
        stream = b"".join(encode_frame(m) for m in messages)
        assert FrameBuffer().feed(stream) == messages

    def test_frame_cap_rejected(self):
        buffer = FrameBuffer()
        huge = (1 << 62).to_bytes(8, "big")
        with pytest.raises(ProtocolError):
            buffer.feed(huge + b"x")

    def test_non_dict_frame_rejected(self):
        body = pickle.dumps([1, 2, 3])
        frame = len(body).to_bytes(8, "big") + body
        with pytest.raises(ProtocolError):
            FrameBuffer().feed(frame)


# -------------------------------------------------------------- coordinator --
class TestCoordinatorPrimitives:
    def test_resolve_callable(self):
        assert resolve_callable("builtins:sorted") is sorted
        with pytest.raises(DispatchError):
            resolve_callable("no-colon")
        with pytest.raises(ModuleNotFoundError):
            resolve_callable("definitely_not_a_module_xyz:fn")
        with pytest.raises(DispatchError):
            resolve_callable("math:pi")  # not callable

    def test_backoff_jitter_deterministic_and_bounded(self):
        for task in range(20):
            for attempt in range(4):
                value = backoff_jitter(task, attempt)
                assert value == backoff_jitter(task, attempt)
                assert 0.0 <= value < 0.5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Coordinator(lease_timeout=0)
        with pytest.raises(ValueError):
            Coordinator(max_retries=-1)
        with pytest.raises(ValueError):
            Coordinator(backoff=-0.1)

    def test_keys_length_mismatch(self):
        with Coordinator() as coordinator:
            with pytest.raises(ValueError):
                coordinator.run("builtins:sorted", [{"x": 1}], keys=["a", "b"])

    def test_version_mismatch_rejected(self):
        with Coordinator(lease_timeout=5.0) as coordinator:
            sock = socket.create_connection(coordinator.address, timeout=10)
            try:
                send_message(sock, {"type": "hello", "version": PROTOCOL_VERSION + 1})
                # The coordinator rejects the connection, sees no worker
                # remains, and degrades to finishing the task inline.
                assert coordinator.run("builtins:sorted", [[2, 1]]) == [[1, 2]]
                reply = recv_message(sock)
                assert reply["type"] == "reject"
                assert reply["version"] == PROTOCOL_VERSION
            finally:
                sock.close()
        assert coordinator.stats["inline"] == 1


class TestCoordinatorRuns:
    def test_spawned_workers_compute_all_tasks(self):
        specs = [{"x": i} for i in range(7)]
        with Coordinator(lease_timeout=10.0, backoff=0.01) as coordinator:
            spawned = _spawn_workers(coordinator, 2)
            try:
                results = coordinator.run("test_dispatch:_square", specs, spawned=spawned)
            finally:
                coordinator.close()
                _reap(spawned)
        assert results == [i * i for i in range(7)]
        assert coordinator.stats["completed"] == 7
        assert coordinator.stats["retries"] == 0

    def test_dedup_computes_shared_keys_once(self):
        specs = [{"x": 3}] * 4 + [{"x": 5}]
        keys = ["k3"] * 4 + ["k5"]
        # Keys are free-form at the Coordinator level (the store hex rule
        # applies to store keys only).
        with Coordinator(lease_timeout=10.0, backoff=0.01) as coordinator:
            spawned = _spawn_workers(coordinator, 2)
            try:
                results = coordinator.run(
                    "test_dispatch:_square", specs, keys=keys, spawned=spawned
                )
            finally:
                coordinator.close()
                _reap(spawned)
        assert results == [9, 9, 9, 9, 25]
        assert coordinator.stats["completed"] == 5
        assert coordinator.stats["dedup_hits"] == 3
        # 5 tasks, 3 deduped: only 2 actual computations happened.
        assert coordinator.stats["from_workers"] + coordinator.stats["inline"] == 2

    def test_poison_task_quarantined_with_structured_error(self):
        specs = [{"x": i} for i in range(3)]
        with Coordinator(lease_timeout=10.0, max_retries=1, backoff=0.01) as coordinator:
            spawned = _spawn_workers(coordinator, 2)
            try:
                with pytest.raises(DispatchError) as excinfo:
                    coordinator.run("test_dispatch:_poison", specs, spawned=spawned)
            finally:
                coordinator.close()
                _reap(spawned)
        error = excinfo.value
        assert error.task_index in (0, 1, 2)
        assert error.attempts == 2  # initial try + max_retries
        assert "poison task" in error.reason
        assert f"dispatch task {error.task_index}" in str(error)
        assert coordinator.stats["quarantined"] >= 1
        assert coordinator.stats["failures"] >= 2

    def test_no_workers_finishes_inline(self):
        specs = [{"x": i} for i in range(4)]
        with Coordinator(lease_timeout=10.0) as coordinator:
            results = coordinator.run("test_dispatch:_square", specs, spawned=[])
        assert results == [0, 1, 4, 9]
        assert coordinator.stats["inline"] == 4
        assert coordinator.stats["from_workers"] == 0

    def test_inline_dedup(self):
        specs = [{"x": 2}, {"x": 2}, {"x": 4}]
        with Coordinator(lease_timeout=10.0) as coordinator:
            results = coordinator.run(
                "test_dispatch:_square", specs, keys=["a", "a", "b"], spawned=[]
            )
        assert results == [4, 4, 16]
        assert coordinator.stats["inline"] == 2
        assert coordinator.stats["dedup_hits"] == 1

    def test_inline_failure_raises_dispatch_error(self):
        with Coordinator(lease_timeout=10.0) as coordinator:
            with pytest.raises(DispatchError) as excinfo:
                coordinator.run("test_dispatch:_poison", [{"x": 9}], spawned=[])
        assert excinfo.value.task_index == 0
        assert "poison task 9" in excinfo.value.reason

    def test_closed_coordinator_rejects_run(self):
        coordinator = Coordinator()
        coordinator.close()
        with pytest.raises(RuntimeError):
            coordinator.run("builtins:sorted", [])


# ---------------------------------------------------------- external worker --
class TestExternalWorker:
    def test_cli_worker_attaches_and_computes(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        with Coordinator(lease_timeout=10.0) as coordinator:
            host, port = coordinator.address
            process = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--connect", f"{host}:{port}", "--id", "ext0",
                ],
                cwd=REPO_ROOT,
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            try:
                results = coordinator.run("builtins:sorted", [[3, 1, 2], [5, 4]])
            finally:
                coordinator.close()
                try:
                    process.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=30)
        assert results == [[1, 2, 3], [4, 5]]
        assert coordinator.stats["from_workers"] == 2
        assert process.returncode == 0

    def test_cli_rejects_malformed_connect(self):
        from repro.__main__ import main

        assert main(["worker", "--connect", "nonsense"]) == 2

    def test_cli_rejects_invalid_fault_plan(self, tmp_path):
        from repro.__main__ import main

        plan_path = tmp_path / "plan.json"
        plan_path.write_text('[{"action": "explode"}]')
        code = main(
            ["worker", "--connect", "127.0.0.1:1", "--fault-plan", str(plan_path)]
        )
        assert code == 2


# ------------------------------------------------------------------- parity --
@pytest.fixture(scope="module")
def serial_reports():
    """Serial-backend reference reports, one per experiment kind (seed 3)."""
    return {
        kind: Runner().run(ExperimentConfig.from_dict(make(3)))
        for kind, make in PAYLOADS.items()
    }


class TestDistributedParity:
    def test_backend_registered(self):
        backend_cls = EXECUTION_BACKENDS.get("distributed")
        assert backend_cls.name == "distributed"

    @pytest.mark.parametrize("kind", sorted(PAYLOADS))
    def test_distributed_matches_serial(self, kind, serial_reports):
        report = run_with_execution(
            PAYLOADS[kind](3),
            {"backend": "distributed", "workers": 2,
             "lease_timeout": 15.0, "backoff": 0.01},
        )
        assert_reports_identical(
            serial_reports[kind], report, f"distributed/{kind}"
        )
        stats = report.cache["dispatch"]
        assert stats["completed"] >= 2
        assert stats["retries"] == 0
        assert stats["quarantined"] == 0

    def test_single_worker_falls_back_to_serial_walk(self, serial_reports):
        report = run_with_execution(
            metaseg_payload(3), {"backend": "distributed", "workers": 1}
        )
        assert_reports_identical(serial_reports["metaseg"], report, "workers=1")
        # Fallback never touches the queue.
        assert report.cache["dispatch"]["completed"] == 0

    def test_worker_env_guard_suppresses_fanout(self, serial_reports, monkeypatch):
        from repro.dispatch.worker import WORKER_ENV

        monkeypatch.setenv(WORKER_ENV, "1")
        report = run_with_execution(
            metaseg_payload(3), {"backend": "distributed", "workers": 2}
        )
        assert_reports_identical(serial_reports["metaseg"], report, "env-guard")
        assert report.cache["dispatch"]["completed"] == 0
