"""Tests for the repro.obs telemetry layer.

The three ISSUE-mandated gates plus unit coverage of the package itself:

* concurrent metrics hammering — N threads x M increments totals exactly;
* span-context propagation across the ``process`` backend — shard spans
  re-parent under the parent's ``extract`` span and surface as dotted
  ``extract.shardN`` timing keys;
* the determinism gate — a traced run's ``to_json`` is bitwise identical
  to an untraced run's (telemetry never leaks into deterministic output).
"""

import json
import threading

import pytest

from repro.api.runner import Runner
from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    format_span_tree,
    timings_view,
    trace_to_chrome,
    trace_to_dict,
    validate_chrome_trace,
    write_json,
)

TINY_HEIGHT = 48
TINY_WIDTH = 96


def metaseg_payload(seed: int = 9, **execution) -> dict:
    payload = {
        "kind": "metaseg", "seed": seed,
        "data": {"dataset": "cityscapes_like", "n_val": 4,
                 "height": TINY_HEIGHT, "width": TINY_WIDTH},
        "evaluation": {"n_runs": 2},
    }
    if execution:
        payload["execution"] = execution
    return payload


# ------------------------------------------------------------------ spans --
class TestSpans:
    def test_nesting_builds_parent_child_edges(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        records = {record["name"]: record for record in tracer.records()}
        assert records["inner"]["parent_id"] == outer.span_id
        assert records["outer"]["parent_id"] is None
        assert records["inner"]["duration_s"] >= 0.0
        assert records["outer"]["duration_s"] >= records["inner"]["duration_s"]
        assert inner.span_id != outer.span_id

    def test_attrs_at_open_and_mid_flight(self):
        tracer = Tracer()
        with tracer.span("stage", kind="metaseg") as span:
            span.set(n_items=7)
        (record,) = tracer.records()
        assert record["attrs"] == {"kind": "metaseg", "n_items": 7}

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (record,) = tracer.records()
        assert record["attrs"]["error"] == "ValueError"
        assert record["duration_s"] is not None
        # The stack unwound: a new span is a root again.
        with tracer.span("after"):
            pass
        after = [r for r in tracer.records() if r["name"] == "after"][0]
        assert after["parent_id"] is None

    def test_sibling_threads_do_not_nest_into_each_other(self):
        tracer = Tracer()
        ready = threading.Barrier(2)

        def worker(name):
            ready.wait(timeout=30)
            with tracer.span(name):
                pass

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        records = tracer.records()
        assert len(records) == 2
        assert all(record["parent_id"] is None for record in records)

    def test_current_context_is_picklable_continuation(self):
        tracer = Tracer()
        assert tracer.current_context() is None
        with tracer.span("root") as root:
            context = tracer.current_context()
        assert context == {"trace_id": tracer.trace_id, "parent_span_id": root.span_id}
        json.dumps(context)  # picklable/serialisable by construction

    def test_merge_rebases_child_starts_onto_parent_epoch(self):
        parent = Tracer()
        child = Tracer(trace_id=parent.trace_id, id_prefix="1.0.")
        child.wall_epoch = parent.wall_epoch + 5.0  # simulate a later process
        with child.span("shard0", parent_id="1"):
            pass
        child_start = child.records()[0]["start_s"]
        parent.merge(child.export())
        (merged,) = parent.records()
        assert merged["span_id"] == "1.0.1"
        assert merged["start_s"] == pytest.approx(child_start + 5.0)
        assert merged["parent_id"] == "1"

    def test_timings_view_bare_dotted_total(self):
        tracer = Tracer()
        with tracer.span("run") as root:
            with tracer.span("extract"):
                with tracer.span("shard0"):
                    pass
            with tracer.span("evaluate"):
                pass
        timings = timings_view(tracer.records(), root.span_id)
        assert set(timings) == {"extract", "extract.shard0", "evaluate", "total"}
        assert all(value >= 0.0 for value in timings.values())
        assert timings_view(tracer.records(), None) == {}
        assert timings_view(tracer.records(), "missing") == {}

    def test_timings_view_ignores_spans_outside_subtree(self):
        tracer = Tracer()
        with tracer.span("other"):
            pass
        with tracer.span("run") as root:
            with tracer.span("resolve"):
                pass
        timings = timings_view(tracer.records(), root.span_id)
        assert set(timings) == {"resolve", "total"}

    def test_format_span_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("extract"):
                pass
        rows = format_span_tree(tracer.records())
        assert len(rows) == 2
        assert "run" in rows[0] and "extract" in rows[1]
        indent = lambda row: len(row) - len(row.lstrip())  # noqa: E731
        assert indent(rows[1]) == indent(rows[0]) + 2

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set(more=2)
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.current_context() is None
        assert NULL_TRACER.enabled is False
        # One shared no-op span object: no allocation per call.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


# ---------------------------------------------------------------- metrics --
class TestMetrics:
    def test_counter_inc_and_negative_rejection(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_buckets_and_overflow(self):
        histogram = Histogram("h", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["bounds"] == [0.1, 1.0]
        assert snap["counts"] == [1, 2, 1]  # <=0.1, <=1.0, overflow
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(3.05)
        assert snap["min"] == 0.05 and snap["max"] == 2.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 0.5))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 1.0))

    def test_registry_get_or_create_shares_instances(self):
        registry = MetricsRegistry()
        first = registry.counter("a.count")
        assert registry.counter("a.count") is first
        assert "a.count" in registry
        assert len(registry) == 1

    def test_registry_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a Counter"):
            registry.gauge("x")

    def test_registry_duplicate_register_is_an_error(self):
        registry = MetricsRegistry()
        registry.register("x", Counter("x"))
        with pytest.raises(ValueError, match="already has"):
            registry.register("x", Counter("x"))

    def test_registry_unknown_get_names_available(self):
        registry = MetricsRegistry()
        registry.counter("known")
        with pytest.raises(KeyError, match="known"):
            registry.get("unknown")

    def test_snapshot_groups_by_kind_and_sorts(self):
        registry = MetricsRegistry()
        registry.gauge("b.gauge").set(2)
        registry.counter("a.count").inc(3)
        registry.histogram("c.latency", bounds=DEFAULT_BUCKETS).observe(0.01)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] == {"a.count": 3}
        assert snap["gauges"] == {"b.gauge": 2.0}
        assert snap["histograms"]["c.latency"]["count"] == 1
        json.dumps(snap)  # JSON-ready by contract

    def test_concurrent_hammering_totals_exactly(self):
        """ISSUE gate: N threads x M increments == N*M, no lost updates."""
        registry = MetricsRegistry()
        n_threads, n_increments = 8, 1000
        ready = threading.Barrier(n_threads)

        def hammer():
            counter = registry.counter("hammered.count")
            histogram = registry.histogram("hammered.latency")
            ready.wait(timeout=30)
            for i in range(n_increments):
                counter.inc()
                histogram.observe(i * 1e-5)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert registry.counter("hammered.count").value == n_threads * n_increments
        snap = registry.histogram("hammered.latency").snapshot()
        assert snap["count"] == n_threads * n_increments
        assert sum(snap["counts"]) == n_threads * n_increments


# -------------------------------------------------------------- exporters --
class TestExporters:
    @pytest.fixture()
    def traced(self):
        tracer = Tracer()
        with tracer.span("run", seed=9):
            with tracer.span("extract"):
                pass
        return tracer

    def test_trace_to_dict_is_ordered_and_tagged(self, traced):
        payload = trace_to_dict(traced)
        assert payload["format"] == "repro-trace/1"
        assert payload["trace_id"] == traced.trace_id
        starts = [record["start_s"] for record in payload["records"]]
        assert starts == sorted(starts)

    def test_chrome_export_is_valid_and_loadable_shape(self, traced):
        payload = trace_to_chrome(traced)
        assert validate_chrome_trace(payload) == []
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {event["name"] for event in complete} == {"run", "extract"}
        assert all(event["ts"] >= 0 and event["dur"] >= 0 for event in complete)
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert metadata and all(e["name"] == "thread_name" for e in metadata)
        assert payload["otherData"]["trace_id"] == traced.trace_id

    def test_validator_catches_broken_payloads(self):
        assert validate_chrome_trace([]) == ["payload must be a JSON object, got list"]
        assert validate_chrome_trace({}) == ["payload.traceEvents must be a list"]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "", "pid": 1, "tid": 1,
                              "ts": -1, "dur": 0}]}
        )
        assert any("missing event name" in problem for problem in problems)
        assert any("ts must be a non-negative number" in problem for problem in problems)
        assert validate_chrome_trace({"traceEvents": [{"ph": "?"}]}) != []

    def test_write_json_is_atomic_and_deterministic(self, traced, tmp_path):
        target = tmp_path / "nested" / "trace.json"
        write_json(str(target), trace_to_chrome(traced))
        assert target.exists()
        loaded = json.loads(target.read_text())
        assert validate_chrome_trace(loaded) == []
        # No temp-file litter next to the target.
        assert [p.name for p in target.parent.iterdir()] == ["trace.json"]


# ------------------------------------------------- runner instrumentation --
class TestRunnerInstrumentation:
    def test_traced_report_json_is_bitwise_identical_to_untraced(self):
        """ISSUE gate: telemetry never changes deterministic output."""
        untraced = Runner(tracer=NULL_TRACER).run(metaseg_payload())
        traced = Runner(tracer=Tracer()).run(metaseg_payload())
        default = Runner().run(metaseg_payload())
        assert traced.to_json() == untraced.to_json()
        assert default.to_json() == untraced.to_json()

    def test_null_tracer_disables_timings_entirely(self):
        report = Runner(tracer=NULL_TRACER).run(metaseg_payload())
        assert report.timings == {}

    def test_default_runner_keeps_timings_contract(self):
        report = Runner().run(metaseg_payload())
        assert {"resolve", "extract", "evaluate", "total"} <= set(report.timings)
        assert report.timings["total"] >= report.timings["extract"]

    def test_shared_tracer_collects_stage_spans(self):
        tracer = Tracer()
        Runner(tracer=tracer).run(metaseg_payload())
        names = {record["name"] for record in tracer.records()}
        assert {"run", "resolve", "extract", "evaluate"} <= names
        run_record = [r for r in tracer.records() if r["name"] == "run"][0]
        assert run_record["attrs"]["kind"] == "metaseg"

    def test_process_backend_propagates_span_context(self):
        """ISSUE gate: shard spans cross the process boundary and re-parent."""
        tracer = Tracer()
        report = Runner(tracer=tracer).run(
            metaseg_payload(backend="process", workers=2)
        )
        assert {"extract.shard0", "extract.shard1"} <= set(report.timings)
        records = tracer.records()
        extract = [r for r in records if r["name"] == "extract"][0]
        shards = sorted(
            (r for r in records if r["name"].startswith("shard")),
            key=lambda r: r["name"],
        )
        assert [shard["name"] for shard in shards] == ["shard0", "shard1"]
        for index, shard in enumerate(shards):
            # Re-parented under the parent's extract span, with the
            # collision-free id prefix the parent handed the worker.
            assert shard["parent_id"] == extract["span_id"]
            assert shard["span_id"].startswith(f"{extract['span_id']}.{index}.")
            assert shard["attrs"]["start"] == shard["attrs"]["stop"] - 2

    def test_process_backend_traced_matches_untraced_bitwise(self):
        traced = Runner(tracer=Tracer()).run(metaseg_payload(backend="process", workers=2))
        untraced = Runner(tracer=NULL_TRACER).run(metaseg_payload(backend="process", workers=2))
        assert traced.to_json() == untraced.to_json()

    def test_cached_payloads_stay_telemetry_free(self, tmp_path):
        """Shard-cache round trip: the trace envelope never reaches the store."""
        from repro.store import ResultStore

        store = ResultStore(tmp_path)
        cold = Runner(store=store, tracer=Tracer()).run(
            metaseg_payload(backend="process", workers=2)
        )
        warm_tracer = Tracer()
        warm = Runner(store=store, tracer=warm_tracer).run(
            metaseg_payload(backend="process", workers=2)
        )
        assert warm.cache["hit"] is True
        assert warm.to_json() == cold.to_json()
        assert warm.timings.keys() == {"cache_lookup"}
