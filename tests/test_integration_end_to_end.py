"""End-to-end integration tests spanning several subpackages.

These tests exercise the public API the way the examples and benchmark
harnesses do and assert the *qualitative* results of the paper: the ordering
of methods and baselines, not absolute numbers.
"""

import numpy as np
import pytest

from repro import (
    CityscapesLikeDataset,
    DecisionRuleComparison,
    MetaSegPipeline,
    MetricsDataset,
    SimulatedSegmentationNetwork,
    mobilenetv2_profile,
    xception65_profile,
)
from repro.core.meta_classification import MetaClassifier
from repro.core.multiresolution import MultiResolutionInference
from repro.segmentation.scene import SceneConfig


@pytest.fixture(scope="module")
def dataset():
    return CityscapesLikeDataset(
        n_train=6, n_val=8, scene_config=SceneConfig(height=48, width=96), random_state=21
    )


@pytest.fixture(scope="module")
def pipelines(dataset):
    weak = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=22)
    strong = SimulatedSegmentationNetwork(xception65_profile(), random_state=22)
    return MetaSegPipeline(weak), MetaSegPipeline(strong)


class TestTable1Shape:
    """The Table I orderings must hold end-to-end on the synthetic substrate."""

    @pytest.fixture(scope="class")
    def results(self, pipelines, dataset):
        out = {}
        for pipeline in pipelines:
            metrics = pipeline.extract_dataset(dataset.val_samples())
            out[pipeline.network.profile.name] = (
                metrics,
                pipeline.run_table1_protocol(metrics, n_runs=3, random_state=5),
            )
        return out

    def test_full_metrics_beat_entropy_and_naive(self, results):
        for name, (metrics, result) in results.items():
            full_auroc = result.classification["logistic_penalized"]["test_auroc"][0]
            entropy_auroc = result.classification["entropy_only"]["test_auroc"][0]
            assert full_auroc > entropy_auroc, name
            full_acc = result.classification["logistic_penalized"]["test_accuracy"][0]
            assert full_acc >= result.naive_accuracy - 0.05, name

    def test_regression_gains_over_entropy(self, results):
        for name, (_metrics, result) in results.items():
            assert (
                result.regression["linear_all_metrics"]["test_r2"][0]
                > result.regression["entropy_only"]["test_r2"][0]
            ), name

    def test_penalized_and_unpenalized_similar(self, results):
        for name, (_metrics, result) in results.items():
            penalized = result.classification["logistic_penalized"]["test_accuracy"][0]
            unpenalized = result.classification["logistic_unpenalized"]["test_accuracy"][0]
            assert abs(penalized - unpenalized) < 0.1, name

    def test_stronger_network_has_fewer_false_positives(self, results):
        weak_fraction = results["mobilenetv2"][0].false_positive_fraction()
        strong_fraction = results["xception65"][0].false_positive_fraction()
        assert strong_fraction <= weak_fraction + 0.05

    def test_strong_single_metric_correlations_exist(self, pipelines, results):
        # Section II quotes Pearson |R| of up to ~0.85 for single metrics.
        for pipeline in pipelines:
            metrics, _ = results[pipeline.network.profile.name]
            correlations = pipeline.metric_iou_correlations(metrics)
            assert max(abs(v) for v in correlations.values()) > 0.6


class TestMultiResolutionGain:
    def test_ensemble_features_do_not_hurt(self, dataset):
        network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=30)
        plain = MetaSegPipeline(network)
        plain_data = plain.extract_dataset(dataset.val_samples())
        pyramid = MultiResolutionInference(network, crop_fractions=(1.0, 0.75, 0.5))
        pyramid_data = pyramid.extract_many(dataset.val_samples())
        assert pyramid_data.n_features > plain_data.n_features
        # Both datasets must support meta classification.
        for data in (plain_data, pyramid_data):
            train, test = data.split((0.8, 0.2), random_state=1)
            result = MetaClassifier(method="logistic", penalty=1.0).evaluate(train, test)
            assert result.test_auroc > 0.6


class TestDecisionRulesShape:
    """The Fig. 5 orderings must hold end-to-end."""

    @pytest.fixture(scope="class")
    def comparison(self, dataset):
        network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=31)
        comparison = DecisionRuleComparison(network)
        return comparison.run_on_dataset(dataset)

    def test_ml_trades_precision_for_recall(self, comparison):
        bayes = comparison.per_rule["bayes"]
        ml = comparison.per_rule["ml"]
        assert bayes.mean_precision() >= ml.mean_precision()
        assert ml.mean_recall() >= bayes.mean_recall() - 0.05

    def test_ml_reduces_missed_ground_truth(self, comparison):
        rates = comparison.non_detection_rates()
        assert rates["ml"] <= rates["bayes"]


class TestMetricsDatasetRoundTrip:
    def test_pipeline_dataset_survives_split_and_concat(self, pipelines, dataset):
        pipeline, _ = pipelines
        metrics = pipeline.extract_dataset(dataset.val_samples()[:4])
        train, test = metrics.split((0.75, 0.25), random_state=0)
        rebuilt = MetricsDataset.concatenate([train, test])
        assert len(rebuilt) == len(metrics)
        assert sorted(rebuilt.feature("S").tolist()) == sorted(metrics.feature("S").tolist())
