"""Tests for repro.evaluation.regression and repro.evaluation.segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.regression import (
    mean_absolute_error,
    pearson_correlation,
    r2_score,
    residual_std,
)
from repro.evaluation.segmentation import (
    accumulate_confusion,
    class_iou,
    iou_from_confusion,
    mean_iou,
    pixel_accuracy,
)


class TestR2:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        pred = np.full(4, y.mean())
        assert abs(r2_score(y, pred)) < 1e-12

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.array([3.0, 1.0, -2.0])
        assert r2_score(y, pred) < 0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            r2_score(np.array([1.0]), np.array([1.0]))


class TestResidualStd:
    def test_zero_for_perfect(self):
        y = np.array([0.2, 0.6, 0.9])
        assert residual_std(y, y) == 0.0

    def test_constant_offset(self):
        y = np.zeros(10)
        pred = np.full(10, 0.5)
        assert abs(residual_std(y, pred) - 0.5) < 1e-12


class TestMAE:
    def test_basic(self):
        assert mean_absolute_error(np.array([0.0, 1.0]), np.array([1.0, 1.0])) == 0.5


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert abs(pearson_correlation(x, 2 * x + 1) - 1.0) < 1e-12

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert abs(pearson_correlation(x, -x) + 1.0) < 1e-12

    def test_constant_input_returns_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        assert abs(pearson_correlation(x, y) - pearson_correlation(y, x)) < 1e-12

    @given(scale=st.floats(0.1, 10), offset=st.floats(-5, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_invariant_to_affine_transform(self, scale, offset):
        rng = np.random.default_rng(1)
        x = rng.normal(size=40)
        y = rng.normal(size=40)
        a = pearson_correlation(x, y)
        b = pearson_correlation(scale * x + offset, y)
        assert abs(a - b) < 1e-9


class TestPixelAccuracy:
    def test_perfect(self):
        labels = np.array([[0, 1], [2, 3]])
        assert pixel_accuracy(labels, labels) == 1.0

    def test_ignore_pixels_excluded(self):
        gt = np.array([[0, -1], [1, -1]])
        pred = np.array([[0, 5], [0, 5]])
        assert pixel_accuracy(gt, pred) == 0.5

    def test_all_ignored_raises(self):
        gt = np.full((2, 2), -1)
        with pytest.raises(ValueError):
            pixel_accuracy(gt, np.zeros((2, 2), dtype=int))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pixel_accuracy(np.zeros((2, 2), dtype=int), np.zeros((3, 2), dtype=int))


class TestClassIoU:
    def test_perfect_iou(self):
        labels = np.array([[0, 0, 1, 1]])
        per_class = class_iou(labels, labels, n_classes=2)
        assert per_class == {0: 1.0, 1: 1.0}

    def test_half_overlap(self):
        gt = np.array([[1, 1, 0, 0]])
        pred = np.array([[1, 0, 0, 0]])
        per_class = class_iou(gt, pred, n_classes=2)
        assert abs(per_class[1] - 0.5) < 1e-12

    def test_absent_class_omitted(self):
        labels = np.zeros((2, 2), dtype=int)
        per_class = class_iou(labels, labels, n_classes=5)
        assert set(per_class) == {0}

    def test_mean_iou(self):
        gt = np.array([[1, 1, 0, 0]])
        pred = np.array([[1, 1, 0, 1]])
        value = mean_iou(gt, pred, n_classes=2)
        assert 0.0 < value < 1.0


class TestConfusionAccumulation:
    def test_accumulation_matches_direct_iou(self):
        rng = np.random.default_rng(2)
        gt1 = rng.integers(0, 3, size=(10, 10))
        pred1 = rng.integers(0, 3, size=(10, 10))
        gt2 = rng.integers(0, 3, size=(10, 10))
        pred2 = rng.integers(0, 3, size=(10, 10))
        confusion = accumulate_confusion(gt1, pred1, n_classes=3)
        confusion = accumulate_confusion(gt2, pred2, n_classes=3, confusion=confusion)
        combined_gt = np.concatenate([gt1, gt2], axis=0)
        combined_pred = np.concatenate([pred1, pred2], axis=0)
        direct = class_iou(combined_gt, combined_pred, n_classes=3)
        from_confusion = iou_from_confusion(confusion)
        for class_id, value in direct.items():
            assert abs(from_confusion[class_id] - value) < 1e-12

    def test_wrong_confusion_shape_raises(self):
        with pytest.raises(ValueError):
            accumulate_confusion(
                np.zeros((2, 2), dtype=int), np.zeros((2, 2), dtype=int),
                n_classes=3, confusion=np.zeros((2, 2), dtype=np.int64),
            )

    def test_iou_from_non_square_raises(self):
        with pytest.raises(ValueError):
            iou_from_confusion(np.zeros((2, 3)))
