"""Deterministic fault-injection suite for the distributed backend.

Every test runs a real experiment through ``backend="distributed"`` with a
:class:`~repro.dispatch.faults.FaultPlan` injected via the
``REPRO_DISPATCH_FAULTS`` environment variable, then asserts two things:

1. **bitwise parity** — tables and provenance identical to the serial
   reference, whatever was killed, hung or delayed;
2. **exact counters** — ``report.cache["dispatch"]`` matches the plan:
   faults are keyed on (task, attempt) or lease ordinal, never wall-clock,
   so each plan produces one predictable set of retry/loss events.

The one counter never asserted is ``duplicates``: whether a hung worker's
late result arrives before the coordinator closes is a genuine race (it
usually dies on a broken pipe), and the contract only requires that late
results are *ignored*, not that they are observed.

Select with ``-m faults``.
"""

from __future__ import annotations

import pytest

from repro.api.config import ExperimentConfig
from repro.api.runner import Runner
from repro.dispatch import FAULTS_ENV, FaultPlan

from test_dispatch import PAYLOADS, assert_reports_identical, run_with_execution

pytestmark = pytest.mark.faults

#: Shards per kind at workers=2 for the tiny payloads (metaseg reference).
N_SHARDS = 2

#: Short lease so hang faults expire quickly; heartbeats renew it for
#: healthy-but-slow (delay) tasks, so only true wedges pay it.
LEASE_TIMEOUT = 0.45


@pytest.fixture(scope="module")
def serial_reports():
    """Serial-backend reference reports, one per experiment kind (seed 3)."""
    return {
        kind: Runner().run(ExperimentConfig.from_dict(make(3)))
        for kind, make in PAYLOADS.items()
    }


def run_faulted(monkeypatch, plan, kind="metaseg", lease_timeout=15.0):
    """One distributed run under ``plan``; (report, dispatch counters)."""
    monkeypatch.setenv(FAULTS_ENV, plan.to_json())
    report = run_with_execution(
        PAYLOADS[kind](3),
        {"backend": "distributed", "workers": 2,
         "lease_timeout": lease_timeout, "backoff": 0.01},
    )
    return report, report.cache["dispatch"]


class TestDeterministicPlans:
    def test_kill_one_worker(self, serial_reports, monkeypatch):
        plan = FaultPlan([{"task": 0, "attempt": 0, "action": "kill"}])
        report, stats = run_faulted(monkeypatch, plan)
        assert_reports_identical(serial_reports["metaseg"], report, "kill-one")
        assert stats["worker_lost"] == 1
        assert stats["retries"] == 1
        assert stats["lease_expired"] == 0
        assert stats["failures"] == 0
        assert stats["quarantined"] == 0
        assert stats["completed"] == N_SHARDS
        assert stats["from_workers"] == N_SHARDS
        assert stats["inline"] == 0

    def test_all_workers_die_finishes_inline(self, serial_reports, monkeypatch):
        # Task-less entries match each worker's first lease: both workers
        # die on whatever they pick up first, and the coordinator must
        # degrade to computing everything inline — with the serial result.
        plan = FaultPlan([{"attempt": 0, "action": "kill"}])
        report, stats = run_faulted(monkeypatch, plan)
        assert_reports_identical(serial_reports["metaseg"], report, "all-die")
        assert stats["worker_lost"] == 2
        assert stats["retries"] == 2
        assert stats["quarantined"] == 0
        assert stats["completed"] == N_SHARDS
        assert stats["from_workers"] == 0
        assert stats["inline"] == N_SHARDS

    def test_hang_expires_lease_and_requeues(self, serial_reports, monkeypatch):
        # The hang sleeps without heartbeats, so the 0.45s lease genuinely
        # expires and the task is recomputed elsewhere; the hung worker's
        # eventual late result must be ignored, not double-counted.
        plan = FaultPlan(
            [{"task": 0, "attempt": 0, "action": "hang", "seconds": 2.2}]
        )
        report, stats = run_faulted(monkeypatch, plan, lease_timeout=LEASE_TIMEOUT)
        assert_reports_identical(serial_reports["metaseg"], report, "hang")
        assert stats["lease_expired"] == 1
        assert stats["retries"] == 1
        assert stats["worker_lost"] == 0
        assert stats["failures"] == 0
        assert stats["quarantined"] == 0
        assert stats["completed"] == N_SHARDS

    def test_delay_with_heartbeats_is_benign(self, serial_reports, monkeypatch):
        # Control case: the delay (1s) exceeds the lease timeout (0.45s)
        # but heartbeats keep renewing the lease — slow-but-healthy workers
        # must never be treated as failed.
        plan = FaultPlan(
            [{"task": 0, "attempt": 0, "action": "delay", "seconds": 1.0}]
        )
        report, stats = run_faulted(monkeypatch, plan, lease_timeout=LEASE_TIMEOUT)
        assert_reports_identical(serial_reports["metaseg"], report, "delay")
        assert stats["lease_expired"] == 0
        assert stats["retries"] == 0
        assert stats["worker_lost"] == 0
        assert stats["failures"] == 0
        assert stats["quarantined"] == 0
        assert stats["completed"] == N_SHARDS
        assert stats["from_workers"] == N_SHARDS

    def test_kill_then_hang_same_task(self, serial_reports, monkeypatch):
        # Layered faults on one task: killed on the first attempt, hung on
        # the retry, completed on the third — two retries, zero losses.
        plan = FaultPlan([
            {"task": 0, "attempt": 0, "action": "kill"},
            {"task": 0, "attempt": 1, "action": "hang", "seconds": 2.2},
        ])
        report, stats = run_faulted(monkeypatch, plan, lease_timeout=LEASE_TIMEOUT)
        assert_reports_identical(serial_reports["metaseg"], report, "kill+hang")
        assert stats["worker_lost"] == 1
        assert stats["lease_expired"] == 1
        assert stats["retries"] == 2
        assert stats["quarantined"] == 0
        assert stats["completed"] == N_SHARDS


class TestFuzzSweep:
    """Seeded random plans across every experiment kind.

    Counters are plan-dependent here, so the assertions are the structural
    invariants: the run terminates, nothing is quarantined (every generated
    fault is survivable within the retry budget), every requeue is accounted
    for by exactly one failure event, and the result is bitwise serial.
    """

    @pytest.mark.parametrize("kind", sorted(PAYLOADS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_generated_plan_keeps_parity(
        self, kind, seed, serial_reports, monkeypatch
    ):
        plan = FaultPlan.generate(
            seed, n_tasks=N_SHARDS, n_workers=2,
            hang_seconds=1.5, delay_seconds=0.05,
        )
        report, stats = run_faulted(
            monkeypatch, plan, kind=kind, lease_timeout=LEASE_TIMEOUT
        )
        assert_reports_identical(
            serial_reports[kind], report, f"fuzz/{kind}/seed{seed}: {plan!r}"
        )
        assert stats["quarantined"] == 0
        assert stats["completed"] >= N_SHARDS
        assert (
            stats["retries"]
            == stats["worker_lost"] + stats["lease_expired"] + stats["failures"]
        ), f"unaccounted requeue under {plan!r}: {stats}"

    def test_generate_is_deterministic(self):
        left = FaultPlan.generate(7, n_tasks=4, n_workers=3)
        right = FaultPlan.generate(7, n_tasks=4, n_workers=3)
        assert left.to_json() == right.to_json()
        assert FaultPlan.from_json(left.to_json()).entries == left.entries
