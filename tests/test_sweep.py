"""Tests for the declarative sweep driver (repro.sweep) and its CLI.

Covers dotted-path config overrides, the structural report diff, sweep
config parsing/expansion (deterministic point order, actionable errors),
the driver's cache behaviour (second sweep fully served from the store,
deterministic output payloads) and the ``python -m repro sweep`` command —
including the output-path contract (parent directories are created, I/O
failures are one-line diagnostics with exit code 2).
"""

import json

import pytest

from repro.__main__ import main
from repro.api.config import ConfigError, ExperimentConfig, apply_dotted_override
from repro.store import ResultStore
from repro.sweep import SweepConfig, run_sweep, structural_diff, summarize_diff

TINY_BASE = {
    "kind": "metaseg",
    "name": "sweep-tiny",
    "seed": 0,
    "data": {"dataset": "cityscapes_like", "n_val": 3, "height": 48, "width": 96},
    "evaluation": {"n_runs": 1},
}


def tiny_sweep(grid=None, **kwargs) -> SweepConfig:
    grid = {"seed": [0, 1]} if grid is None else grid
    return SweepConfig.from_dict({"name": "tiny", "base": TINY_BASE, "grid": grid},
                                 **kwargs)


# ------------------------------------------------------------ dotted overrides


class TestApplyDottedOverride:
    def test_sets_nested_and_top_level_fields(self):
        payload = ExperimentConfig().to_dict()
        apply_dotted_override(payload, "meta_models.classifiers", ["gradient_boosting"])
        apply_dotted_override(payload, "seed", 42)
        assert payload["meta_models"]["classifiers"] == ["gradient_boosting"]
        assert payload["seed"] == 42

    def test_unknown_paths_raise_config_error(self):
        payload = ExperimentConfig().to_dict()
        with pytest.raises(ConfigError, match="'meta_models.classifier'"):
            apply_dotted_override(payload, "meta_models.classifier", [])
        with pytest.raises(ConfigError, match="'metamodels'"):
            apply_dotted_override(payload, "metamodels.classifiers", [])
        with pytest.raises(ConfigError, match="non-empty"):
            apply_dotted_override(payload, "", 1)

    def test_cannot_descend_into_leaves(self):
        payload = ExperimentConfig().to_dict()
        with pytest.raises(ConfigError, match="seed.offset"):
            apply_dotted_override(payload, "seed.offset", 1)


# ------------------------------------------------------------- structural diff


class TestStructuralDiff:
    def test_equal_payloads_diff_empty(self):
        payload = {"a": [1, {"b": 2.5}], "c": None}
        assert structural_diff(payload, json.loads(json.dumps(payload))) == []

    def test_changed_added_removed_length(self):
        baseline = {"x": 1, "gone": True, "rows": [1, 2, 3], "nest": {"v": 0.25}}
        other = {"x": 2, "new": "k", "rows": [1, 9], "nest": {"v": 0.5}}
        entries = {e["path"]: e for e in structural_diff(baseline, other)}
        assert entries["x"]["change"] == "changed"
        assert entries["gone"]["change"] == "removed"
        assert entries["new"]["change"] == "added"
        assert entries["rows"]["change"] == "length"
        assert entries["rows[1]"] == {
            "path": "rows[1]", "change": "changed", "baseline": 2, "value": 9,
        }
        assert entries["nest.v"]["baseline"] == 0.25

    def test_type_changes_are_differences(self):
        assert structural_diff({"v": 1}, {"v": 1.0}) != []
        assert structural_diff({"v": 1}, {"v": True}) != []
        assert structural_diff({"v": [1]}, {"v": {"0": 1}}) != []

    def test_deterministic_order_and_summary(self):
        baseline = {"b": 1, "a": 1}
        other = {"a": 2, "b": 2}
        entries = structural_diff(baseline, other)
        assert [e["path"] for e in entries] == ["a", "b"]
        lines = summarize_diff(entries, limit=1)
        assert lines[0].startswith("a: ")
        assert "1 more difference" in lines[-1]


# ------------------------------------------------------------- sweep configs


class TestSweepConfig:
    def test_expansion_is_row_major_and_deterministic(self):
        sweep = tiny_sweep(grid={
            "seed": [0, 1],
            "evaluation.train_fraction": [0.7, 0.8],
        })
        assert sweep.n_points == 4
        points = list(sweep.points())
        combos = [
            (p.config.seed, p.config.evaluation.train_fraction) for p in points
        ]
        # Last grid field varies fastest (row-major), indices are stable.
        assert combos == [(0, 0.7), (0, 0.8), (1, 0.7), (1, 0.8)]
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert points[1].overrides == {"seed": 0, "evaluation.train_fraction": 0.8}
        assert "point-001" in points[1].label

    def test_empty_grid_is_single_base_point(self):
        sweep = tiny_sweep(grid={})
        points = list(sweep.points())
        assert sweep.n_points == 1 and len(points) == 1
        assert points[0].overrides == {}
        assert points[0].label.endswith("(base)")

    def test_rejects_unknown_keys_and_bad_grids(self):
        with pytest.raises(ConfigError, match="unknown sweep config keys"):
            SweepConfig.from_dict({"base": TINY_BASE, "grid": {}, "extra": 1})
        with pytest.raises(ConfigError, match="exactly one of"):
            SweepConfig.from_dict({"grid": {}})
        with pytest.raises(ConfigError, match="exactly one of"):
            SweepConfig.from_dict({"base": TINY_BASE, "base_path": "x.json", "grid": {}})
        with pytest.raises(ConfigError, match="non-empty list"):
            tiny_sweep(grid={"seed": []})
        with pytest.raises(ConfigError, match="'data.n_va'"):
            tiny_sweep(grid={"data.n_va": [1]})

    def test_invalid_point_value_names_the_point(self):
        sweep = tiny_sweep(grid={"evaluation.n_runs": [1, 0]})
        with pytest.raises(ConfigError, match="sweep point 1"):
            list(sweep.points())

    def test_driver_fails_fast_before_computing_any_point(self, tmp_path):
        """A bad later grid cell aborts the sweep before point 0 runs."""
        store = ResultStore(tmp_path)
        with pytest.raises(ConfigError, match="sweep point 1"):
            run_sweep(tiny_sweep(grid={"evaluation.n_runs": [1, 0]}), store=store)
        assert store.stats()["n_entries"] == 0

    def test_base_path_resolves_relative_to_sweep_file(self, tmp_path):
        (tmp_path / "base.json").write_text(json.dumps(TINY_BASE))
        sweep_path = tmp_path / "sweep.json"
        sweep_path.write_text(json.dumps({
            "name": "from-file", "base_path": "base.json", "grid": {"seed": [0, 1]},
        }))
        sweep = SweepConfig.from_file(sweep_path)
        assert sweep.name == "from-file"
        assert sweep.base["data"]["n_val"] == 3
        assert sweep.n_points == 2

    def test_missing_base_path_is_config_error(self, tmp_path):
        sweep_path = tmp_path / "sweep.json"
        sweep_path.write_text(json.dumps({"base_path": "nope.json", "grid": {}}))
        with pytest.raises(ConfigError, match="cannot read sweep base config"):
            SweepConfig.from_file(sweep_path)


# ------------------------------------------------------------- sweep driver


class TestRunSweep:
    def test_no_cache_runs_and_diffs(self):
        result = run_sweep(tiny_sweep(), no_cache=True)
        assert len(result.points) == 2
        assert result.store_root is None
        assert result.cache_hits == 0
        diffs = result.diffs()
        label = result.points[1].point.label
        assert diffs[label], "different seeds must produce different reports"
        assert any(e["path"] == "config.seed" for e in diffs[label])
        rows = result.summary_rows()
        assert rows[1] == "cache: disabled"
        assert rows[-1].startswith("cache hits: 0/2")

    def test_second_sweep_served_from_cache_bitwise(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_sweep(tiny_sweep(), store=store)
        warm = run_sweep(tiny_sweep(), store=store)
        assert cold.cache_hits == 0
        assert warm.cache_hits == 2
        assert cold.to_json() == warm.to_json()
        run_info = warm.to_dict(include_run_info=True)["run"]
        assert run_info["cache_hits"] == 2
        assert "run" not in warm.to_dict()

    def test_execution_overrides_do_not_change_the_numbers(self, tmp_path):
        baseline = run_sweep(tiny_sweep(), no_cache=True)
        threaded = run_sweep(
            tiny_sweep(), store=ResultStore(tmp_path), backend="thread", workers=2
        )
        # The execution override is echoed in each report's config (so the
        # full payloads differ), but tables and provenance are bit-equal.
        for base_point, thread_point in zip(baseline.points, threaded.points):
            assert base_point.report.tables == thread_point.report.tables
            assert base_point.report.provenance == thread_point.report.provenance
            config_echo = thread_point.report.config["execution"]
            assert config_echo["backend"] == "thread"
            assert config_echo["workers"] == 2


# --------------------------------------------------------------- CLI surface


@pytest.fixture()
def sweep_file(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps({
        "name": "cli-tiny", "base": TINY_BASE, "grid": {"seed": [0, 1]},
    }))
    return path


class TestSweepCli:
    def test_sweep_cold_then_warm(self, sweep_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["sweep", str(sweep_file), "--cache-dir", str(cache_dir)]) == 0
        assert "cache hits: 0/2" in capsys.readouterr().out
        assert main(["sweep", str(sweep_file), "--cache-dir", str(cache_dir)]) == 0
        assert "cache hits: 2/2" in capsys.readouterr().out

    def test_sweep_output_creates_parent_dirs(self, sweep_file, tmp_path, capsys):
        output = tmp_path / "deep" / "ly" / "nested" / "sweep.json"
        code = main([
            "sweep", str(sweep_file), "--no-cache", "--output", str(output),
        ])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["n_points"] == 2
        assert [p["report"]["seed"] for p in payload["points"]] == [0, 1]
        assert payload["diffs_vs_baseline"]

    def test_sweep_unwritable_output_is_exit_2(self, sweep_file, capsys):
        code = main([
            "sweep", str(sweep_file), "--no-cache", "--output", "/proc/nope/out.json",
        ])
        assert code == 2
        assert "error: cannot write sweep result" in capsys.readouterr().err

    def test_sweep_bad_configs_are_exit_2(self, tmp_path, capsys):
        assert main(["sweep", str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"base": TINY_BASE, "grid": {"data.n_va": [1]}}))
        assert main(["sweep", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "invalid sweep config" in err and "data.n_va" in err

    def test_run_output_creates_parent_dirs(self, tmp_path, capsys):
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps(TINY_BASE))
        output = tmp_path / "not" / "yet" / "there" / "report.json"
        assert main(["run", str(config_path), "--output", str(output)]) == 0
        assert json.loads(output.read_text())["kind"] == "metaseg"

    def test_run_cache_flag_round_trip(self, tmp_path, capsys):
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps(TINY_BASE))
        cache_dir = tmp_path / "cache"
        assert main(["run", str(config_path), "--cache-dir", str(cache_dir)]) == 0
        assert "cache: miss" in capsys.readouterr().out
        assert main(["run", str(config_path), "--cache-dir", str(cache_dir)]) == 0
        assert "cache: hit" in capsys.readouterr().out

    def test_cache_info_and_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps(TINY_BASE))
        assert main(["run", str(config_path), "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        # One report entry plus the per-split meta-model fits of the run.
        assert "report/metaseg" in out and "fit/metaseg" in out
        n_entries = len(ResultStore(cache_dir).entries())
        assert n_entries > 1 and f"entries: {n_entries}" in out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert f"evicted {n_entries} cache entries" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        assert "entries: 0" in capsys.readouterr().out


# ------------------------------------------------------- distributed sweeps


class TestDistributedSweep:
    def test_point_fanout_matches_serial_bitwise(self, tmp_path):
        serial = run_sweep(tiny_sweep(), no_cache=True)
        distributed = run_sweep(
            tiny_sweep(), store=ResultStore(tmp_path),
            backend="distributed", workers=2,
        )
        assert len(distributed.points) == 2
        for serial_point, dist_point in zip(serial.points, distributed.points):
            assert serial_point.report.tables == dist_point.report.tables
            assert (
                serial_point.report.provenance == dist_point.report.provenance
            )
            config_echo = dist_point.report.config["execution"]
            assert config_echo["backend"] == "distributed"
            assert config_echo["workers"] == 2
        # The diffs-vs-baseline machinery works on worker-shipped reports.
        label = distributed.points[1].point.label
        assert any(
            e["path"] == "config.seed" for e in distributed.diffs()[label]
        )

    def test_workers_publish_to_the_shared_store(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_sweep(tiny_sweep(), store=store, backend="distributed", workers=2)
        assert cold.cache_hits == 0
        assert store.stats()["n_entries"] > 0
        warm = run_sweep(tiny_sweep(), store=store, backend="distributed", workers=2)
        assert warm.cache_hits == 2
        for cold_point, warm_point in zip(cold.points, warm.points):
            assert cold_point.report.tables == warm_point.report.tables

    def test_distributed_without_cache(self):
        result = run_sweep(
            tiny_sweep(), no_cache=True, backend="distributed", workers=2
        )
        assert result.store_root is None
        assert len(result.points) == 2
        assert result.points[0].report.tables
