"""State round-trip tests for the fitted meta-models.

Every registered meta-classifier / meta-regressor must serialize through
``to_state`` into a plain-JSON document and reconstruct through
``from_state`` into a model with **bitwise-identical** predictions — the
basis of the fit-once/score-many serving path (``Runner.fit`` persists
exactly these states to the store).
"""

import json

import numpy as np
import pytest

from repro.core.meta_classification import MetaClassifier
from repro.core.meta_regression import MetaRegressor
from repro.models.scaler import StandardScaler
from repro.models.state import model_from_state, model_to_state

#: Per-method kwargs keeping the expensive families fast in tests.
FAST_PARAMS = {
    "gradient_boosting": {"n_estimators": 10},
    "neural_network": {"n_epochs": 10},
}

CLASSIFIER_METHODS = ["logistic", "gradient_boosting", "neural_network"]
REGRESSOR_METHODS = ["linear", "gradient_boosting", "neural_network"]


def _json_round_trip(state):
    """JSON encode/decode — exactly what the store's json codec does."""
    return json.loads(json.dumps(state))


@pytest.fixture(scope="module")
def split_dataset(metrics_dataset):
    return metrics_dataset.split((0.8, 0.2), random_state=1)


class TestMetaClassifierState:
    @pytest.mark.parametrize("method", CLASSIFIER_METHODS)
    def test_round_trip_is_bitwise(self, split_dataset, method):
        train, test = split_dataset
        classifier = MetaClassifier(
            method=method, random_state=3, **FAST_PARAMS.get(method, {})
        ).fit(train)
        state = _json_round_trip(classifier.to_state())
        restored = MetaClassifier.from_state(state)
        assert np.array_equal(classifier.predict_proba(test), restored.predict_proba(test))
        # The restored model serializes back to the identical document.
        assert json.dumps(state, sort_keys=True) == json.dumps(
            _json_round_trip(restored.to_state()), sort_keys=True
        )

    @pytest.mark.parametrize("method", CLASSIFIER_METHODS)
    def test_evaluate_equals_fit_plus_evaluate_fitted(self, split_dataset, method):
        train, test = split_dataset
        kwargs = dict(method=method, random_state=5, **FAST_PARAMS.get(method, {}))
        direct = MetaClassifier(**kwargs).evaluate(train, test)
        split_path = MetaClassifier(**kwargs)
        split_path.fit(train)
        fitted = split_path.evaluate_fitted(train, test)
        assert direct.test_auroc == fitted.test_auroc
        assert direct.train_auroc == fitted.train_auroc

    def test_feature_subset_survives(self, split_dataset):
        train, test = split_dataset
        subset = list(train.feature_names[:4])
        classifier = MetaClassifier(
            method="logistic", feature_subset=subset, random_state=1
        ).fit(train)
        restored = MetaClassifier.from_state(_json_round_trip(classifier.to_state()))
        assert restored.feature_subset == classifier.feature_subset
        assert np.array_equal(classifier.predict_proba(test), restored.predict_proba(test))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MetaClassifier(method="logistic").to_state()

    def test_wrong_type_raises(self, split_dataset):
        train, _ = split_dataset
        state = MetaClassifier(method="logistic").fit(train).to_state()
        with pytest.raises(ValueError):
            MetaRegressor.from_state(state)


class TestMetaRegressorState:
    @pytest.mark.parametrize("method", REGRESSOR_METHODS)
    def test_round_trip_is_bitwise(self, split_dataset, method):
        train, test = split_dataset
        regressor = MetaRegressor(
            method=method, random_state=3, **FAST_PARAMS.get(method, {})
        ).fit(train)
        state = _json_round_trip(regressor.to_state())
        restored = MetaRegressor.from_state(state)
        assert np.array_equal(regressor.predict(test), restored.predict(test))
        assert json.dumps(state, sort_keys=True) == json.dumps(
            _json_round_trip(restored.to_state()), sort_keys=True
        )

    @pytest.mark.parametrize("method", REGRESSOR_METHODS)
    def test_evaluate_equals_fit_plus_evaluate_fitted(self, split_dataset, method):
        train, test = split_dataset
        kwargs = dict(method=method, random_state=5, **FAST_PARAMS.get(method, {}))
        direct = MetaRegressor(**kwargs).evaluate(train, test)
        split_path = MetaRegressor(**kwargs)
        split_path.fit(train)
        fitted = split_path.evaluate_fitted(train, test)
        assert direct.test_r2 == fitted.test_r2
        assert direct.test_sigma == fitted.test_sigma

    def test_clip_predictions_survives(self, split_dataset):
        train, test = split_dataset
        regressor = MetaRegressor(
            method="linear", clip_predictions=False, random_state=1
        ).fit(train)
        restored = MetaRegressor.from_state(_json_round_trip(regressor.to_state()))
        assert restored.clip_predictions is False
        assert np.array_equal(regressor.predict(test), restored.predict(test))


class TestLowLevelModelState:
    def test_scaler_round_trip(self, metrics_dataset):
        features = metrics_dataset.features
        scaler = StandardScaler().fit(features)
        restored = StandardScaler.from_state(_json_round_trip(scaler.to_state()))
        assert np.array_equal(scaler.transform(features), restored.transform(features))

    def test_unknown_model_type_raises(self):
        with pytest.raises(ValueError):
            model_from_state({"type": "NotAModel", "params": {}})

    def test_model_to_state_requires_methods(self):
        with pytest.raises(TypeError):
            model_to_state(object())
