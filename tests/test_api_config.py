"""Tests for repro.api.config: declarative experiment configurations."""

import json

import pytest

from repro.api.config import (
    EXPERIMENT_KINDS,
    ConfigError,
    DataConfig,
    EvalConfig,
    ExecutionConfig,
    ExperimentConfig,
    ExtractionConfig,
    MetaModelConfig,
    NetworkConfig,
)


class TestDefaults:
    def test_default_config_is_valid_metaseg(self):
        config = ExperimentConfig()
        assert config.kind == "metaseg"
        assert config.seed == 0
        assert config.validate() is config

    def test_all_kinds_validate(self):
        for kind in EXPERIMENT_KINDS:
            ExperimentConfig(kind=kind).validate()

    def test_sections_have_independent_defaults(self):
        first = ExperimentConfig()
        second = ExperimentConfig()
        first.meta_models.classifiers.append("neural_network")
        assert second.meta_models.classifiers == ["logistic"]


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            ExperimentConfig(kind="segmentation").validate()

    def test_non_integer_seed(self):
        with pytest.raises(ValueError, match="seed must be an integer"):
            ExperimentConfig(seed="zero").validate()

    @pytest.mark.parametrize(
        "section, kwargs, message",
        [
            ("data", {"n_val": -1}, "split sizes"),
            ("data", {"height": 8}, "at least 32x64"),
            ("data", {"labeled_stride": 0}, "labeled_stride"),
            ("network", {"profile": ""}, "profile name"),
            ("extraction", {"chunk_size": 0}, "chunk_size"),
            ("extraction", {"chunk_size": -3}, "chunk_size"),
            ("extraction", {"max_workers": -1}, "max_workers"),
            ("extraction", {"connectivity": 6}, "connectivity"),
            ("execution", {"backend": ""}, "backend"),
            ("execution", {"workers": -2}, "workers"),
            ("execution", {"streaming": "yes"}, "streaming"),
            ("execution", {"lease_timeout": 0}, "lease_timeout"),
            ("execution", {"lease_timeout": True}, "lease_timeout"),
            ("execution", {"max_retries": -1}, "max_retries"),
            ("execution", {"max_retries": 1.5}, "max_retries"),
            ("execution", {"backoff": -0.1}, "backoff"),
            ("execution", {"backoff": "fast"}, "backoff"),
            ("meta_models", {"classifiers": []}, "at least one classifier"),
            ("meta_models", {"classification_penalty": -1.0}, "penalties"),
            ("evaluation", {"n_runs": 0}, "n_runs"),
            ("evaluation", {"train_fraction": 1.0}, "train_fraction"),
            ("evaluation", {"split_fractions": [0.5, 0.5]}, "split_fractions"),
            ("evaluation", {"n_frames_list": []}, "n_frames_list"),
            ("evaluation", {"rules": []}, "rules"),
            ("evaluation", {"category": ""}, "category"),
        ],
    )
    def test_section_validation(self, section, kwargs, message):
        section_types = {
            "data": DataConfig,
            "network": NetworkConfig,
            "extraction": ExtractionConfig,
            "execution": ExecutionConfig,
            "meta_models": MetaModelConfig,
            "evaluation": EvalConfig,
        }
        config = ExperimentConfig(**{section: section_types[section](**kwargs)})
        with pytest.raises(ValueError, match=message):
            config.validate()

    def test_serial_worker_counts_are_valid(self):
        """The unified contract: None/0/1 all mean serial and all validate."""
        for workers in (None, 0, 1):
            ExperimentConfig(
                extraction=ExtractionConfig(max_workers=workers),
                execution=ExecutionConfig(workers=workers),
            ).validate()


class TestParseTimeValidation:
    """Invalid values fail at from_dict/from_json time with a ConfigError."""

    @pytest.mark.parametrize(
        "section, payload, fragment",
        [
            ("extraction", {"chunk_size": 0}, "extraction: chunk_size"),
            ("extraction", {"chunk_size": -4}, "extraction: chunk_size"),
            ("extraction", {"max_workers": -1}, "extraction: max_workers"),
            ("extraction", {"chunk_size": True}, "extraction: chunk_size"),
            ("execution", {"workers": -1}, "execution: workers"),
            ("execution", {"workers": True}, "execution: workers"),
            ("execution", {"backend": ""}, "execution: backend"),
            ("execution", {"streaming": 3}, "execution: streaming"),
            ("execution", {"lease_timeout": -1}, "execution: lease_timeout"),
            ("execution", {"max_retries": "many"}, "execution: max_retries"),
            ("execution", {"backoff": True}, "execution: backoff"),
        ],
    )
    def test_bad_execution_numbers_fail_at_parse_time(self, section, payload, fragment):
        with pytest.raises(ConfigError, match=fragment):
            ExperimentConfig.from_dict({section: payload})

    def test_config_error_is_a_value_error(self):
        # Callers that catch ValueError (the CLI, older tests) keep working.
        assert issubclass(ConfigError, ValueError)

    def test_from_json_validates_too(self):
        with pytest.raises(ConfigError, match="execution: workers"):
            ExperimentConfig.from_json(
                json.dumps({"execution": {"workers": -3}})
            )

    def test_valid_execution_section_round_trips(self):
        config = ExperimentConfig.from_dict(
            {"execution": {"backend": "process", "workers": 4, "streaming": True}}
        )
        assert config.execution.backend == "process"
        rebuilt = ExperimentConfig.from_json(config.to_json())
        assert rebuilt == config

    def test_dispatch_fields_round_trip_with_defaults(self):
        config = ExperimentConfig.from_dict({"execution": {"backend": "distributed"}})
        assert config.execution.lease_timeout == 30.0
        assert config.execution.max_retries == 3
        assert config.execution.backoff == 0.05
        tuned = ExperimentConfig.from_dict(
            {"execution": {"backend": "distributed", "workers": 2,
                           "lease_timeout": 0.5, "max_retries": 1, "backoff": 0.01}}
        )
        tuned.validate()
        rebuilt = ExperimentConfig.from_json(tuned.to_json())
        assert rebuilt == tuned
        assert rebuilt.execution.lease_timeout == 0.5


class TestSerialisation:
    def _sample_config(self) -> ExperimentConfig:
        return ExperimentConfig(
            kind="timedynamic",
            name="roundtrip",
            seed=17,
            data=DataConfig(dataset="kitti_like", n_sequences=3, n_frames=5),
            network=NetworkConfig(profile="mobilenetv2", overrides={"miss_rate": 0.1}),
            extraction=ExtractionConfig(chunk_size=4, max_workers=2),
            meta_models=MetaModelConfig(
                classifiers=["gradient_boosting"],
                regressors=["gradient_boosting"],
                model_params={"gradient_boosting": {"n_estimators": 10}},
            ),
            evaluation=EvalConfig(n_runs=2, n_frames_list=[0, 1], compositions=["R"]),
        )

    def test_dict_round_trip(self):
        config = self._sample_config()
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = self._sample_config()
        rebuilt = ExperimentConfig.from_json(config.to_json())
        assert rebuilt == config
        # JSON text itself is stable under a second round trip.
        assert rebuilt.to_json() == config.to_json()

    def test_to_dict_is_json_serialisable(self):
        json.dumps(self._sample_config().to_dict())

    def test_partial_dict_uses_defaults(self):
        config = ExperimentConfig.from_dict({"kind": "decision", "seed": 2})
        assert config.evaluation.rules == ["bayes", "ml"]
        assert config.data.dataset == "cityscapes_like"

    def test_sections_accept_dataclass_instances(self):
        config = ExperimentConfig.from_dict({"data": DataConfig(n_val=5)})
        assert config.data.n_val == 5

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys: networks"):
            ExperimentConfig.from_dict({"networks": {}})

    def test_unknown_section_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys in config section 'data': n_vall"):
            ExperimentConfig.from_dict({"data": {"n_vall": 3}})

    def test_non_dict_payloads_rejected(self):
        with pytest.raises(ValueError, match="must be a dict"):
            ExperimentConfig.from_dict(["kind"])
        with pytest.raises(ValueError, match="section 'data' must be a dict"):
            ExperimentConfig.from_dict({"data": 3})
