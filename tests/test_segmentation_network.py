"""Tests for repro.segmentation.network."""

import numpy as np
import pytest

from repro.evaluation.segmentation import pixel_accuracy
from repro.segmentation.network import (
    NetworkProfile,
    SimulatedSegmentationNetwork,
    mobilenetv2_profile,
    xception65_profile,
)


class TestNetworkProfile:
    def test_presets_valid(self):
        xception65_profile()
        mobilenetv2_profile()

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            NetworkProfile(miss_rate=1.5)
        with pytest.raises(ValueError):
            NetworkProfile(confusion_rate=-0.1)
        with pytest.raises(ValueError):
            NetworkProfile(overconfident_error_rate=2.0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            NetworkProfile(hallucination_size=(5, 2))
        with pytest.raises(ValueError):
            NetworkProfile(uncertainty_blob_size=(0, 2))

    def test_invalid_logits(self):
        with pytest.raises(ValueError):
            NetworkProfile(peak_correct=0.0)
        with pytest.raises(ValueError):
            NetworkProfile(confidence_field_amplitude=1.0)

    def test_with_overrides(self):
        profile = xception65_profile().with_overrides(miss_rate=0.0)
        assert profile.miss_rate == 0.0
        assert profile.name == "xception65"


class TestSimulatedSegmentationNetwork:
    def test_output_is_probability_field(self, probability_field, scene, label_space):
        assert probability_field.shape == (*scene.labels.shape, label_space.n_classes)
        np.testing.assert_allclose(probability_field.sum(axis=2), 1.0, atol=1e-9)
        assert probability_field.min() >= 0.0

    def test_deterministic_per_index(self, mobilenet_network, scene):
        a = mobilenet_network.predict_probabilities(scene.labels, index=5)
        b = mobilenet_network.predict_probabilities(scene.labels, index=5)
        np.testing.assert_array_equal(a, b)

    def test_different_indices_differ(self, mobilenet_network, scene):
        a = mobilenet_network.predict_probabilities(scene.labels, index=0)
        b = mobilenet_network.predict_probabilities(scene.labels, index=1)
        assert not np.array_equal(a, b)

    def test_prediction_close_to_ground_truth(self, mobilenet_network, scene):
        prediction = mobilenet_network.predict_labels(scene.labels, index=0)
        assert pixel_accuracy(scene.labels, prediction) > 0.7

    def test_prediction_not_identical_to_ground_truth(self, mobilenet_network, scene):
        prediction = mobilenet_network.predict_labels(scene.labels, index=0)
        assert np.any(prediction != scene.labels)

    def test_stronger_profile_is_more_accurate(self, xception_network, mobilenet_network, scenes):
        accuracy_strong = np.mean([
            pixel_accuracy(s.labels, xception_network.predict_labels(s.labels, index=i))
            for i, s in enumerate(scenes)
        ])
        accuracy_weak = np.mean([
            pixel_accuracy(s.labels, mobilenet_network.predict_labels(s.labels, index=i))
            for i, s in enumerate(scenes)
        ])
        assert accuracy_strong > accuracy_weak

    def test_errors_have_higher_entropy_on_average(self, mobilenet_network, scene):
        from repro.core.heatmaps import entropy_heatmap

        probs = mobilenet_network.predict_probabilities(scene.labels, index=0)
        prediction = np.argmax(probs, axis=2)
        entropy = entropy_heatmap(probs)
        wrong = prediction != scene.labels
        if wrong.sum() > 10:
            assert entropy[wrong].mean() > entropy[~wrong].mean()

    def test_perfect_profile_reproduces_ground_truth(self, scene):
        profile = NetworkProfile(
            name="perfect",
            miss_rate=0.0,
            confusion_rate=0.0,
            hallucination_rate=0.0,
            boundary_jitter=0.0,
            logit_noise=0.0,
            smooth_sigma=0.0,
            uncertainty_blob_rate=0.0,
            confidence_field_amplitude=0.0,
            peak_correct=12.0,
        )
        network = SimulatedSegmentationNetwork(profile, random_state=0)
        prediction = network.predict_labels(scene.labels, index=0)
        assert pixel_accuracy(scene.labels, prediction) > 0.999

    def test_callable_interface(self, mobilenet_network, scene):
        probs = mobilenet_network(scene.labels, index=0)
        np.testing.assert_array_equal(
            probs, mobilenet_network.predict_probabilities(scene.labels, index=0)
        )

    def test_ignore_regions_still_predicted(self, mobilenet_network, scene_config):
        from repro.segmentation.scene import StreetSceneGenerator, SceneConfig

        config = SceneConfig(height=48, width=96, ignore_margin=4)
        scene = StreetSceneGenerator(config=config, random_state=1).generate(0)
        prediction = mobilenet_network.predict_labels(scene.labels, index=0)
        assert np.all(prediction >= 0)

    def test_n_classes_property(self, mobilenet_network, label_space):
        assert mobilenet_network.n_classes == label_space.n_classes

    def test_more_hallucinations_create_more_errors(self, scene):
        quiet = SimulatedSegmentationNetwork(
            mobilenetv2_profile().with_overrides(hallucination_rate=0.0), random_state=3
        )
        noisy = SimulatedSegmentationNetwork(
            mobilenetv2_profile().with_overrides(hallucination_rate=30.0), random_state=3
        )
        acc_quiet = pixel_accuracy(scene.labels, quiet.predict_labels(scene.labels, index=0))
        acc_noisy = pixel_accuracy(scene.labels, noisy.predict_labels(scene.labels, index=0))
        assert acc_noisy <= acc_quiet
