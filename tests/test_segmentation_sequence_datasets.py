"""Tests for repro.segmentation.sequence and repro.segmentation.datasets."""

import numpy as np
import pytest

from repro.segmentation.datasets import (
    CityscapesLikeDataset,
    KittiLikeDataset,
    global_frame_index,
)
from repro.segmentation.scene import SceneConfig
from repro.segmentation.sequence import SequenceConfig, SequenceGenerator


class TestSequenceConfig:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            SequenceConfig(n_frames=0)
        with pytest.raises(ValueError):
            SequenceConfig(spawn_probability=1.5)
        with pytest.raises(ValueError):
            SequenceConfig(despawn_margin=-1)


class TestSequenceGenerator:
    @pytest.fixture(scope="class")
    def sequence(self, scene_config):
        config = SequenceConfig(n_frames=6, scene_config=scene_config)
        return SequenceGenerator(config=config, random_state=3).generate(0)

    def test_number_of_frames(self, sequence):
        assert len(sequence) == 6
        assert sequence.labels().shape[0] == 6

    def test_background_static(self, sequence):
        first = sequence[0]
        last = sequence[-1]
        np.testing.assert_array_equal(first.background, last.background)

    def test_frames_change_over_time(self, sequence):
        assert not np.array_equal(sequence[0].labels, sequence[-1].labels)

    def test_temporal_coherence(self, sequence):
        # Consecutive frames differ in far fewer pixels than distant frames
        # would on average: the scene evolves smoothly.
        diffs = [
            np.mean(sequence[i].labels != sequence[i + 1].labels)
            for i in range(len(sequence) - 1)
        ]
        assert max(diffs) < 0.2

    def test_deterministic(self, scene_config):
        config = SequenceConfig(n_frames=4, scene_config=scene_config)
        a = SequenceGenerator(config=config, random_state=8).generate(1)
        b = SequenceGenerator(config=config, random_state=8).generate(1)
        for frame_a, frame_b in zip(a.frames, b.frames):
            np.testing.assert_array_equal(frame_a.labels, frame_b.labels)

    def test_objects_move(self, sequence):
        # At least one dynamic object changes its position between first and
        # last frame.
        first_positions = {o.object_id: (o.center_row, o.center_col) for o in sequence[0].objects}
        moved = False
        for obj in sequence[-1].objects:
            if obj.object_id in first_positions:
                if abs(obj.center_col - first_positions[obj.object_id][1]) > 0.5:
                    moved = True
        assert moved

    def test_negative_index_raises(self, scene_config):
        generator = SequenceGenerator(
            config=SequenceConfig(n_frames=2, scene_config=scene_config), random_state=0
        )
        with pytest.raises(ValueError):
            generator.generate(-1)


class TestCityscapesLikeDataset:
    def test_split_sizes(self, cityscapes_like):
        assert len(cityscapes_like.train_samples()) == 6
        assert len(cityscapes_like.val_samples()) == 4

    def test_samples_have_ground_truth(self, cityscapes_like):
        for sample in cityscapes_like.iter_val():
            assert sample.has_ground_truth
            assert sample.labels.ndim == 2

    def test_image_ids_unique(self, cityscapes_like):
        ids = [s.image_id for s in cityscapes_like.train_samples()] + [
            s.image_id for s in cityscapes_like.val_samples()
        ]
        assert len(set(ids)) == len(ids)

    def test_caching_returns_same_object(self, cityscapes_like):
        assert cityscapes_like.train_sample(0) is cityscapes_like.train_sample(0)

    def test_out_of_range(self, cityscapes_like):
        with pytest.raises(IndexError):
            cityscapes_like.val_sample(100)

    def test_train_and_val_differ(self, cityscapes_like):
        assert not np.array_equal(
            cityscapes_like.train_sample(0).labels, cityscapes_like.val_sample(0).labels
        )

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            CityscapesLikeDataset(n_train=-1, n_val=2)

    def test_n_classes(self, cityscapes_like):
        assert cityscapes_like.n_classes == 19


class TestKittiLikeDataset:
    def test_sparse_ground_truth(self, kitti_like):
        samples = kitti_like.samples(0)
        labeled = [s for s in samples if s.has_ground_truth]
        assert 0 < len(labeled) < len(samples)
        assert kitti_like.n_labeled_frames() == len(labeled) * kitti_like.n_sequences

    def test_labeled_frame_indices(self, kitti_like):
        indices = kitti_like.labeled_frame_indices()
        assert all(0 <= i < kitti_like.n_frames_per_sequence for i in indices)
        assert indices == sorted(indices)

    def test_all_samples_count(self, kitti_like):
        assert len(kitti_like.all_samples()) == (
            kitti_like.n_sequences * kitti_like.n_frames_per_sequence
        )

    def test_sequence_caching(self, kitti_like):
        assert kitti_like.sequence(0) is kitti_like.sequence(0)

    def test_out_of_range(self, kitti_like):
        with pytest.raises(IndexError):
            kitti_like.sequence(99)

    def test_invalid_parameters(self, scene_config):
        with pytest.raises(ValueError):
            KittiLikeDataset(n_sequences=0)
        with pytest.raises(ValueError):
            KittiLikeDataset(labeled_stride=0)


class TestGlobalFrameIndex:
    def test_unique_over_sequences(self):
        seen = set()
        for sequence in range(3):
            for frame in range(5):
                seen.add(global_frame_index(sequence, frame, 5))
        assert len(seen) == 15

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            global_frame_index(0, 5, 5)
        with pytest.raises(ValueError):
            global_frame_index(-1, 0, 5)
