"""Tests for repro.core.pipeline, repro.core.multiresolution and repro.core.visualization."""

import numpy as np
import pytest

from repro.core.meta_regression import MetaRegressor
from repro.core.multiresolution import MultiResolutionInference
from repro.core.pipeline import MetaSegPipeline
from repro.core.visualization import (
    dataset_iou_maps,
    fig1_panels,
    iou_to_rgb,
    labels_to_rgb,
    read_ppm,
    render_ascii,
    write_ppm,
)


class TestMetaSegPipeline:
    def test_extract_dataset(self, metaseg_pipeline, cityscapes_like):
        dataset = metaseg_pipeline.extract_dataset(cityscapes_like.val_samples())
        assert len(dataset) > 20
        assert dataset.has_targets
        assert 0.0 < dataset.false_positive_fraction() < 1.0

    def test_extract_empty_raises(self, metaseg_pipeline):
        with pytest.raises(ValueError):
            metaseg_pipeline.extract_dataset([])

    def test_table1_protocol_structure(self, metaseg_pipeline, metrics_dataset):
        result = metaseg_pipeline.run_table1_protocol(metrics_dataset, n_runs=2, random_state=0)
        assert result.n_runs == 2
        assert "logistic_penalized" in result.classification
        assert "logistic_unpenalized" in result.classification
        assert "entropy_only" in result.classification
        assert "linear_all_metrics" in result.regression
        assert "entropy_only" in result.regression
        for metrics in result.classification.values():
            for mean, std in metrics.values():
                assert 0.0 <= mean <= 1.0
                assert std >= 0.0

    def test_table1_ordering_matches_paper(self, metaseg_pipeline, metrics_dataset):
        result = metaseg_pipeline.run_table1_protocol(metrics_dataset, n_runs=2, random_state=1)
        full_auroc = result.classification["logistic_penalized"]["test_auroc"][0]
        entropy_auroc = result.classification["entropy_only"]["test_auroc"][0]
        assert full_auroc > entropy_auroc
        assert full_auroc > result.naive_accuracy - 0.2
        full_r2 = result.regression["linear_all_metrics"]["test_r2"][0]
        entropy_r2 = result.regression["entropy_only"]["test_r2"][0]
        assert full_r2 > entropy_r2

    def test_summary_rows_renderable(self, metaseg_pipeline, metrics_dataset):
        result = metaseg_pipeline.run_table1_protocol(metrics_dataset, n_runs=1, random_state=2)
        rows = result.summary_rows()
        assert any("Meta Classification" in row for row in rows)
        assert any("Meta Regression" in row for row in rows)

    def test_invalid_protocol_arguments(self, metaseg_pipeline, metrics_dataset):
        with pytest.raises(ValueError):
            metaseg_pipeline.run_table1_protocol(metrics_dataset, n_runs=0)
        with pytest.raises(ValueError):
            metaseg_pipeline.run_table1_protocol(metrics_dataset, train_fraction=1.5)

    def test_metric_correlations(self, metaseg_pipeline, metrics_dataset):
        correlations = metaseg_pipeline.metric_iou_correlations(metrics_dataset)
        assert set(correlations) == set(metrics_dataset.feature_names)
        best = max(abs(v) for v in correlations.values())
        assert best > 0.5  # the Section II claim: strong single-metric correlation


class TestMultiResolution:
    @pytest.fixture(scope="class")
    def inference(self, mobilenet_network, label_space):
        return MultiResolutionInference(
            mobilenet_network, crop_fractions=(1.0, 0.75), label_space=label_space
        )

    def test_ensemble_members(self, inference, scene):
        members = inference.predict_ensemble(scene.labels, index=0)
        assert len(members) == 2
        for member in members:
            np.testing.assert_allclose(member.sum(axis=2), 1.0, atol=1e-6)

    def test_extended_features_present(self, inference, scene, extractor):
        dataset = inference.extract(scene.labels, index=0, image_id="img")
        base_names = set(extractor.feature_names())
        extra = set(dataset.feature_names) - base_names
        assert {"E_ens_mean", "E_ens_var", "M_ens_var", "V_ens_var"}.issubset(extra)
        assert dataset.has_targets

    def test_variance_columns_non_negative(self, inference, scene):
        dataset = inference.extract(scene.labels, index=0)
        for name in ("E_ens_var", "M_ens_var", "V_ens_var"):
            assert dataset.feature(name).min() >= 0.0

    def test_invalid_crop_fractions(self, mobilenet_network):
        with pytest.raises(ValueError):
            MultiResolutionInference(mobilenet_network, crop_fractions=(0.8, 0.5))
        with pytest.raises(ValueError):
            MultiResolutionInference(mobilenet_network, crop_fractions=(1.0, 1.0))
        with pytest.raises(ValueError):
            MultiResolutionInference(mobilenet_network, crop_fractions=())

    def test_extract_many(self, inference, cityscapes_like):
        dataset = inference.extract_many(cityscapes_like.val_samples()[:2])
        assert len(dataset) > 10


class TestVisualization:
    def test_labels_to_rgb_palette(self, scene, label_space):
        rgb = labels_to_rgb(scene.labels, label_space)
        assert rgb.shape == (*scene.labels.shape, 3)
        assert rgb.dtype == np.uint8
        road_mask = scene.labels == label_space.id_of("road")
        if road_mask.any():
            np.testing.assert_array_equal(rgb[road_mask][0], (128, 64, 128))

    def test_ignore_rendered_white(self, label_space):
        labels = np.full((3, 3), -1)
        rgb = labels_to_rgb(labels, label_space)
        assert np.all(rgb == 255)

    def test_iou_to_rgb_colours(self, image_metrics):
        prediction = image_metrics.prediction
        iou_map = {sid: 1.0 for sid in prediction.segment_ids()}
        rgb = iou_to_rgb(iou_map, prediction)
        # IoU 1 renders green.
        assert rgb[..., 1].max() == 255
        assert rgb[..., 0].min() == 0

    def test_iou_to_rgb_unknown_segment_raises(self, image_metrics):
        with pytest.raises(KeyError):
            iou_to_rgb({9999: 0.5}, image_metrics.prediction)

    def test_ppm_roundtrip(self, tmp_path, scene, label_space):
        rgb = labels_to_rgb(scene.labels, label_space)
        path = write_ppm(tmp_path / "scene.ppm", rgb)
        recovered = read_ppm(path)
        np.testing.assert_array_equal(recovered, rgb)

    def test_render_ascii(self, probability_field):
        from repro.core.heatmaps import entropy_heatmap

        art = render_ascii(entropy_heatmap(probability_field), width=40)
        lines = art.splitlines()
        assert all(len(line) == 40 for line in lines)
        assert len(lines) >= 2

    def test_render_ascii_invalid(self):
        with pytest.raises(ValueError):
            render_ascii(np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            render_ascii(np.zeros((2, 2)), width=1)

    def test_fig1_panels(self, image_metrics, scene, metrics_dataset, label_space):
        dataset = image_metrics.dataset
        regressor = MetaRegressor(method="linear").fit(metrics_dataset)
        predicted = regressor.predict(dataset)
        maps = dataset_iou_maps(dataset, image_metrics.prediction, predicted)
        panels = fig1_panels(
            scene.labels, image_metrics.prediction, maps["true"], maps["predicted"], label_space
        )
        assert set(panels) == {"ground_truth", "prediction", "true_iou", "predicted_iou"}
        for panel in panels.values():
            assert panel.shape == (*scene.labels.shape, 3)

    def test_dataset_iou_maps_validation(self, image_metrics):
        dataset = image_metrics.dataset
        with pytest.raises(ValueError):
            dataset_iou_maps(dataset, image_metrics.prediction, np.zeros(len(dataset) + 1))
