"""Tests for the content-addressed result store (repro.store).

Covers the canonical hashing layer (key stability and sensitivity, version
salting, stage-1 scoping), the filesystem store (atomic round trips,
eviction, self-healing on corrupted or truncated entries) and the cache
integration (whole-report memoisation in the Runner, per-shard caching in
the process backend) — including the headline contract: cached results are
bitwise identical to freshly computed ones, for all three experiment kinds.
"""

import copy
import itertools
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api.config import (
    DataConfig,
    EvalConfig,
    ExecutionConfig,
    ExperimentConfig,
    MetaModelConfig,
)
from repro.api.runner import Runner
from repro.store import (
    ResultStore,
    StoreError,
    canonical_json,
    default_cache_root,
    report_key,
    shard_key,
    stage1_payload,
)
from repro.store import keys as store_keys

TINY_HEIGHT = 48
TINY_WIDTH = 96


def metaseg_config(seed: int = 5, **eval_kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        kind="metaseg",
        name="store-tiny",
        seed=seed,
        data=DataConfig(dataset="cityscapes_like", n_val=4,
                        height=TINY_HEIGHT, width=TINY_WIDTH),
        evaluation=EvalConfig(n_runs=2, **eval_kwargs),
    )


def timedynamic_config(seed: int = 5) -> ExperimentConfig:
    return ExperimentConfig(
        kind="timedynamic",
        seed=seed,
        data=DataConfig(dataset="kitti_like", n_sequences=2, n_frames=6,
                        labeled_stride=2, height=TINY_HEIGHT, width=TINY_WIDTH),
        meta_models=MetaModelConfig(
            classifiers=["gradient_boosting"],
            regressors=["gradient_boosting"],
            classification_penalty=1e-3,
            regression_penalty=1e-3,
            model_params={"gradient_boosting": {"n_estimators": 8, "max_depth": 2,
                                                "max_features": "sqrt"}},
        ),
        evaluation=EvalConfig(n_runs=1, n_frames_list=[0, 1], compositions=["R"]),
    )


def decision_config(seed: int = 5) -> ExperimentConfig:
    return ExperimentConfig(
        kind="decision",
        seed=seed,
        data=DataConfig(dataset="cityscapes_like", n_train=4, n_val=3,
                        height=TINY_HEIGHT, width=TINY_WIDTH),
        evaluation=EvalConfig(rules=["bayes", "ml"]),
    )


# ---------------------------------------------------------------- keys layer


class TestCanonicalKeys:
    def test_canonical_json_is_order_independent(self):
        a = {"b": [1, 2], "a": {"y": 1.5, "x": None}}
        b = {"a": {"x": None, "y": 1.5}, "b": [1, 2]}
        assert canonical_json(a) == canonical_json(b)

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_report_key_stable_across_dict_reordering(self):
        config = metaseg_config().to_dict()
        reordered = json.loads(json.dumps(config, sort_keys=True))
        shuffled = dict(reversed(list(reordered.items())))
        assert report_key(config) == report_key(shuffled)

    def test_report_key_changes_for_any_field(self):
        base = metaseg_config().to_dict()
        keys = {report_key(base)}
        mutations = [
            ("seed", 6),
            ("name", "other"),
            ("kind", "decision"),
            (("data", "n_val"), 5),
            (("data", "height"), 64),
            (("network", "profile"), "xception65"),
            (("extraction", "connectivity"), 4),
            (("extraction", "chunk_size"), 2),
            (("execution", "backend"), "process"),
            (("execution", "workers"), 2),
            (("meta_models", "classifiers"), ["gradient_boosting"]),
            (("meta_models", "classification_penalty"), 2.0),
            (("evaluation", "n_runs"), 3),
            (("evaluation", "train_fraction"), 0.7),
        ]
        for field, value in mutations:
            mutated = copy.deepcopy(base)
            if isinstance(field, tuple):
                mutated[field[0]][field[1]] = value
            else:
                mutated[field] = value
            keys.add(report_key(mutated))
        assert len(keys) == len(mutations) + 1

    def test_version_salt_invalidates_keys(self, monkeypatch):
        config = metaseg_config().to_dict()
        before = report_key(config)
        monkeypatch.setattr(store_keys, "__version__", "999.0.0")
        assert report_key(config) != before

    def test_cache_format_invalidates_keys(self, monkeypatch):
        config = metaseg_config().to_dict()
        before = report_key(config)
        monkeypatch.setattr(store_keys, "CACHE_FORMAT", store_keys.CACHE_FORMAT + 1)
        assert report_key(config) != before


class TestStage1Scoping:
    """Shard keys cover exactly the fields that can influence the shard."""

    def test_metaseg_ignores_protocol_side_fields(self):
        base = metaseg_config().to_dict()
        key = shard_key(base, 0, 2)
        for mutate in (
            lambda d: d["meta_models"].update(classifiers=["gradient_boosting"]),
            lambda d: d["meta_models"].update(classification_penalty=9.0),
            lambda d: d["evaluation"].update(n_runs=7),
            lambda d: d["execution"].update(backend="process", workers=8),
            lambda d: d["extraction"].update(chunk_size=2, max_workers=3),
            lambda d: d.update(name="renamed"),
        ):
            mutated = copy.deepcopy(base)
            mutate(mutated)
            assert shard_key(mutated, 0, 2) == key

    def test_metaseg_tracks_stage1_fields(self):
        base = metaseg_config().to_dict()
        key = shard_key(base, 0, 2)
        for mutate in (
            lambda d: d.update(seed=6),
            lambda d: d["data"].update(n_val=5),
            lambda d: d["network"].update(profile="xception65"),
            lambda d: d["network"].update(overrides={"noise_scale": 0.5}),
            lambda d: d["extraction"].update(connectivity=4),
        ):
            mutated = copy.deepcopy(base)
            mutate(mutated)
            assert shard_key(mutated, 0, 2) != key

    def test_shard_key_tracks_index_range(self):
        base = metaseg_config().to_dict()
        assert shard_key(base, 0, 2) != shard_key(base, 2, 4)
        assert shard_key(base, 0, 2) != shard_key(base, 0, 3)

    def test_timedynamic_tracks_reference_network_and_feature_group(self):
        base = timedynamic_config().to_dict()
        key = shard_key(base, 0, 1)
        ref = copy.deepcopy(base)
        ref["network"]["reference_profile"] = "generic"
        assert shard_key(ref, 0, 1) != key
        group = copy.deepcopy(base)
        group["meta_models"]["feature_group"] = "entropy_only"
        assert shard_key(group, 0, 1) != key
        protocol = copy.deepcopy(base)
        protocol["evaluation"]["n_frames_list"] = [0, 1, 2]
        protocol["meta_models"]["classifiers"] = ["neural_network"]
        assert shard_key(protocol, 0, 1) == key

    def test_decision_tracks_rules_strengths_category(self):
        base = decision_config().to_dict()
        key = shard_key(base, 0, 2)
        for mutate in (
            lambda d: d["evaluation"].update(rules=["bayes"]),
            lambda d: d["evaluation"].update(strengths={"interpolated": 0.5}),
            lambda d: d["evaluation"].update(category="car"),
        ):
            mutated = copy.deepcopy(base)
            mutate(mutated)
            assert shard_key(mutated, 0, 2) != key
        protocol = copy.deepcopy(base)
        protocol["meta_models"]["classifiers"] = ["gradient_boosting"]
        protocol["evaluation"]["n_runs"] = 9
        assert shard_key(protocol, 0, 2) == key

    def test_unknown_kind_rejected(self):
        base = metaseg_config().to_dict()
        base["kind"] = "mystery"
        with pytest.raises(ValueError, match="mystery"):
            stage1_payload(base)


# --------------------------------------------------------------- store layer


class TestResultStore:
    def test_json_round_trip_and_index(self, tmp_path):
        store = ResultStore(tmp_path)
        key = report_key({"payload": 1})
        assert store.get(key) is None
        store.put(key, {"tables": [1, 2.5, None]}, provenance={"type": "report"})
        assert key in store
        assert store.get(key) == {"tables": [1, 2.5, None]}
        entries = store.entries()
        assert [meta["key"] for meta in entries] == [key]
        assert entries[0]["provenance"] == {"type": "report"}
        assert entries[0]["codec"] == "json"
        assert "created_unix" in entries[0]
        stats = store.stats()
        assert stats["n_entries"] == 1 and stats["payload_bytes"] > 0

    def test_json_payloads_keep_order_and_allow_nan(self, tmp_path):
        """Payloads are not key-canonicalised: order survives, NaN caches."""
        store = ResultStore(tmp_path)
        key = report_key({"payload": "order"})
        store.put(key, {"z": 1, "a": [float("nan"), float("inf")]})
        loaded = store.get(key)
        assert list(loaded) == ["z", "a"]
        assert loaded["a"][0] != loaded["a"][0]  # NaN round-trips
        assert loaded["a"][1] == float("inf")

    def test_clear_reclaims_orphan_files(self, tmp_path):
        """A crash can leave payloads without sidecars; clear() wipes them."""
        store = ResultStore(tmp_path)
        store.put(report_key({"n": 1}), {"n": 1})
        orphan = tmp_path / "objects" / "ab" / ("ab" + "0" * 62 + ".payload")
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"stranded")
        assert store.clear() == 1
        assert not (tmp_path / "objects").exists()

    def test_pickle_round_trip_preserves_arrays_bitwise(self, tmp_path):
        store = ResultStore(tmp_path)
        key = report_key({"payload": "pickle"})
        payload = {"values": np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0}
        store.put(key, payload, codec="pickle")
        loaded = store.get(key, codec="pickle")
        np.testing.assert_array_equal(loaded["values"], payload["values"])
        assert loaded["values"].dtype == payload["values"].dtype

    def test_evict_clear_prune(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [report_key({"n": n}) for n in range(3)]
        for n, key in enumerate(keys):
            store.put(key, {"n": n})
        assert store.evict(keys[0]) is True
        assert store.evict(keys[0]) is False
        assert store.get(keys[0]) is None
        assert store.stats()["n_entries"] == 2
        assert store.prune(max_entries=1) == 1
        assert store.stats()["n_entries"] == 1
        assert store.clear() == 1
        assert store.stats()["n_entries"] == 0

    def test_default_root_honours_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"
        assert ResultStore().root == tmp_path / "custom"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro"

    def test_rejects_bad_keys_and_codecs(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(StoreError):
            store.get("../escape")
        with pytest.raises(StoreError):
            store.put("UPPER", {})
        with pytest.raises(StoreError):
            store.put(report_key({}), {}, codec="msgpack")
        with pytest.raises(StoreError):
            store.prune(max_entries=-1)

    @pytest.mark.parametrize(
        "corruption",
        ["truncate_payload", "tamper_payload", "drop_meta", "garbage_meta"],
    )
    def test_corrupted_entries_fall_back_to_miss(self, tmp_path, corruption):
        store = ResultStore(tmp_path)
        key = report_key({"will": "corrupt"})
        store.put(key, {"rows": list(range(50))})
        payload_path = store._payload_path(key)
        meta_path = store._meta_path(key)
        if corruption == "truncate_payload":
            payload_path.write_bytes(payload_path.read_bytes()[:10])
        elif corruption == "tamper_payload":
            payload_path.write_bytes(b'{"rows": [1]}')
        elif corruption == "drop_meta":
            meta_path.unlink()
        else:
            meta_path.write_text("{not json")
        assert store.get(key) is None
        # The broken entry was evicted, and the key is re-publishable.
        assert key not in store
        store.put(key, {"rows": [2]})
        assert store.get(key) == {"rows": [2]}

    def test_codec_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = report_key({"codec": "mismatch"})
        store.put(key, {"x": 1}, codec="json")
        assert store.get(key, codec="pickle") is None


# ------------------------------------------------------- eviction lifecycle


class TestEvictLifecycle:
    """evict() must never leave an orphan payload invisible to the index.

    Regression tests for the partial-delete bug: the sidecar used to be
    unlinked *before* the payload and evict() returned True if *any* file
    was removed — so a payload unlink failure left bytes on disk that no
    entries()/prune()/evict() call could ever see again.
    """

    def _entry(self, store):
        key = report_key({"evict": "lifecycle"})
        store.put(key, {"rows": list(range(10))})
        return key

    def test_payload_unlink_failure_keeps_entry_visible(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        key = self._entry(store)
        real_unlink = Path.unlink

        def failing_unlink(self, *args, **kwargs):
            if self.name.endswith(".payload"):
                raise PermissionError(f"unlink blocked: {self}")
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", failing_unlink)
        assert store.evict(key) is False
        monkeypatch.undo()
        # Both files survive: the entry is still indexed and retryable.
        assert key in store
        assert [meta["key"] for meta in store.entries()] == [key]
        assert store.get(key) == {"rows": list(range(10))}
        assert store.evict(key) is True
        assert store.entries() == []

    def test_sidecar_unlink_failure_returns_false_but_entry_self_heals(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path)
        key = self._entry(store)
        real_unlink = Path.unlink

        def failing_unlink(self, *args, **kwargs):
            if self.name.endswith(".meta.json"):
                raise PermissionError(f"unlink blocked: {self}")
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", failing_unlink)
        assert store.evict(key) is False
        monkeypatch.undo()
        # Payload gone, sidecar left: still visible to the index, and the
        # next get() treats it as a miss and finishes the eviction.
        assert [meta["key"] for meta in store.entries()] == [key]
        assert store.get(key) is None
        assert store.entries() == []

    def test_missing_payload_still_fully_evicts(self, tmp_path):
        store = ResultStore(tmp_path)
        key = self._entry(store)
        store._payload_path(key).unlink()
        assert store.evict(key) is True
        assert not store._meta_path(key).exists()
        assert store.evict(key) is False

    @pytest.mark.skipif(
        os.geteuid() == 0, reason="root bypasses directory write permissions"
    )
    def test_read_only_objects_dir(self, tmp_path):
        store = ResultStore(tmp_path)
        key = self._entry(store)
        bucket = store._payload_path(key).parent
        bucket.chmod(0o555)
        try:
            assert store.evict(key) is False
            assert key in store
        finally:
            bucket.chmod(0o755)
        assert store.evict(key) is True


# ------------------------------------------------------------- LRU pruning


class TestPruneLRU:
    """prune() evicts by recency of *use*, not order of creation.

    Regression tests for the FIFO-masquerading-as-LRU bug: get() never
    recorded an access, and prune() sorted by created_unix — so the hottest
    entries (the oldest, most re-used ones) were evicted first.
    """

    @pytest.fixture
    def clock(self, monkeypatch):
        from repro.store import store as store_module

        ticks = itertools.count(start=1_000.0, step=1.0)
        monkeypatch.setattr(store_module.time, "time", lambda: next(ticks))

    def test_hit_stamps_last_access_atomically(self, tmp_path, clock):
        store = ResultStore(tmp_path)
        key = report_key({"lru": "stamp"})
        store.put(key, {"x": 1})
        (entry,) = store.entries()
        assert "last_access_unix" not in entry
        assert store.get(key) == {"x": 1}
        (entry,) = store.entries()
        assert entry["last_access_unix"] > entry["created_unix"]
        # Monotonic: a later hit moves the stamp forward.
        first_access = entry["last_access_unix"]
        store.get(key)
        (entry,) = store.entries()
        assert entry["last_access_unix"] > first_access

    def test_prune_keeps_hot_old_entry(self, tmp_path, clock):
        store = ResultStore(tmp_path)
        keys = [report_key({"n": n}) for n in range(3)]
        for n, key in enumerate(keys):
            store.put(key, {"n": n})
        # The *oldest* entry is the hottest: re-read after the others exist.
        assert store.get(keys[0]) == {"n": 0}
        assert store.prune(max_entries=2) == 1
        kept = {meta["key"] for meta in store.entries()}
        # FIFO would have evicted keys[0]; LRU evicts the never-read keys[1].
        assert kept == {keys[0], keys[2]}

    def test_prune_tie_breaks_on_creation_for_unread_entries(self, tmp_path, clock):
        store = ResultStore(tmp_path)
        keys = [report_key({"n": n}) for n in range(3)]
        for n, key in enumerate(keys):
            store.put(key, {"n": n})
        assert store.prune(max_entries=1) == 2
        assert [meta["key"] for meta in store.entries()] == [keys[2]]

    def test_prune_requires_a_bound(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(StoreError, match="max_entries and/or max_bytes"):
            store.prune()

    def test_prune_by_max_bytes(self, tmp_path, clock):
        store = ResultStore(tmp_path)
        keys = [report_key({"n": n}) for n in range(4)]
        for n, key in enumerate(keys):
            store.put(key, {"n": n, "pad": "x" * 100})
        per_entry = store.stats()["payload_bytes"] // 4
        # Keep roughly two entries' worth of bytes: the two oldest go.
        removed = store.prune(max_bytes=per_entry * 2)
        assert removed == 2
        assert store.stats()["payload_bytes"] <= per_entry * 2
        assert {meta["key"] for meta in store.entries()} == {keys[2], keys[3]}

    def test_prune_both_bounds_applies_the_tighter(self, tmp_path, clock):
        store = ResultStore(tmp_path)
        keys = [report_key({"n": n}) for n in range(4)]
        for n, key in enumerate(keys):
            store.put(key, {"n": n, "pad": "x" * 100})
        total = store.stats()["payload_bytes"]
        # max_bytes admits all four; max_entries=1 is the binding constraint.
        assert store.prune(max_entries=1, max_bytes=total) == 3
        assert [meta["key"] for meta in store.entries()] == [keys[3]]

    def test_prune_zero_entries_clears_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        for n in range(3):
            store.put(report_key({"n": n}), {"n": n})
        assert store.prune(max_entries=0) == 3
        assert store.stats()["n_entries"] == 0

    def test_touch_failure_never_breaks_a_hit(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        key = report_key({"lru": "best-effort"})
        store.put(key, {"x": 2})
        from repro.store import store as store_module

        def failing_write(path, data):
            raise OSError("read-only cache")

        monkeypatch.setattr(store_module, "_atomic_write_bytes", failing_write)
        assert store.get(key) == {"x": 2}
        (entry,) = store.entries()
        assert "last_access_unix" not in entry


# ------------------------------------------------------- runner memoisation


class TestRunnerMemoisation:
    def test_metaseg_hit_miss_and_bitwise_parity(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        config = metaseg_config()
        first = runner.run(config)
        assert first.cache["hit"] is False
        second = runner.run(metaseg_config())
        assert second.cache["hit"] is True
        assert second.cache["key"] == first.cache["key"]
        fresh = Runner().run(metaseg_config())
        assert not fresh.cache
        assert first.to_json() == second.to_json() == fresh.to_json()
        # Cached report rehydrates into a fully usable ExperimentReport —
        # including identical human-readable output (row dict order survives
        # the store round trip).
        assert second.table("classification") == first.table("classification")
        assert second.summary_rows() == first.summary_rows()
        assert second.timings.keys() == {"cache_lookup"}

    def test_config_change_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        runner.run(metaseg_config())
        changed = runner.run(metaseg_config(seed=6))
        assert changed.cache["hit"] is False
        # Besides the two report entries the store now also holds the
        # per-split meta-model fits of both runs.
        report_entries = [
            meta for meta in store.entries()
            if meta["provenance"].get("type") == "report"
        ]
        assert len(report_entries) == 2

    def test_corrupted_report_entry_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        first = runner.run(metaseg_config())
        key = first.cache["key"]
        store._payload_path(key).write_bytes(b"{broken")
        again = runner.run(metaseg_config())
        assert again.cache["hit"] is False
        assert again.to_json() == first.to_json()
        assert runner.run(metaseg_config()).cache["hit"] is True

    def test_timedynamic_and_decision_parity(self, tmp_path):
        """Cached reports are bitwise identical for the other two kinds."""
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        for make in (timedynamic_config, decision_config):
            first = runner.run(make())
            cached = runner.run(make())
            assert first.cache["hit"] is False
            assert cached.cache["hit"] is True
            assert first.to_json() == cached.to_json()


# ------------------------------------------------------- shard-level caching


class TestShardCache:
    def _process_config(self, **meta_kwargs) -> ExperimentConfig:
        return ExperimentConfig(
            kind="metaseg",
            seed=5,
            data=DataConfig(dataset="cityscapes_like", n_val=4,
                            height=TINY_HEIGHT, width=TINY_WIDTH),
            execution=ExecutionConfig(backend="process", workers=2),
            meta_models=MetaModelConfig(**meta_kwargs),
            evaluation=EvalConfig(n_runs=2),
        )

    def test_meta_model_change_reuses_every_shard(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        cold = runner.run(self._process_config())
        assert cold.cache["hit"] is False
        assert cold.cache["shards"] == {"hits": 0, "misses": 2}
        # Protocol-side change: new report key, but both shards are served
        # from the store — extraction is never recomputed.
        swept = runner.run(self._process_config(classification_penalty=3.0))
        assert swept.cache["hit"] is False
        assert swept.cache["shards"] == {"hits": 2, "misses": 0}
        fresh = Runner().run(self._process_config(classification_penalty=3.0))
        assert swept.to_json() == fresh.to_json()

    def test_corrupted_shard_entry_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        runner.run(self._process_config())
        shard_keys = [
            meta["key"] for meta in store.entries()
            if meta["provenance"].get("type") == "shard"
        ]
        assert len(shard_keys) == 2
        store._payload_path(shard_keys[0]).write_bytes(b"\x80truncated")
        swept = runner.run(self._process_config(classification_penalty=3.0))
        assert swept.cache["shards"] == {"hits": 1, "misses": 1}
        fresh = Runner().run(self._process_config(classification_penalty=3.0))
        assert swept.to_json() == fresh.to_json()


# ------------------------------------------------- get/evict race (TOCTOU)


class TestTouchEvictRace:
    """get() must not resurrect an entry a concurrent evict just removed.

    Regression tests for the TOCTOU between get()'s payload read and the
    last-access stamp: _touch() used to rewrite the sidecar unconditionally,
    so an evict/prune landing in that window left a ghost sidecar with no
    payload behind it — visible to entries(), un-evictable, and counted by
    stats() forever.
    """

    def _entry(self, store):
        key = report_key({"race": "touch-evict"})
        store.put(key, {"rows": list(range(8))})
        return key

    def test_evict_between_read_and_touch_leaves_no_ghost(self, tmp_path):
        import threading

        touch_entered = threading.Event()
        evict_done = threading.Event()

        class HookedStore(ResultStore):
            def _touch(self, key, meta):
                touch_entered.set()
                assert evict_done.wait(10.0), "evictor thread never ran"
                super()._touch(key, meta)

        store = HookedStore(tmp_path)
        key = self._entry(store)

        def evictor():
            touch_entered.wait(10.0)
            assert ResultStore(tmp_path).evict(key) is True
            evict_done.set()

        thread = threading.Thread(target=evictor)
        thread.start()
        try:
            # The reader still gets its value (payload was read before the
            # race) — the eviction must win the *index*, not the response.
            assert store.get(key) == {"rows": list(range(8))}
        finally:
            thread.join(timeout=10.0)
        assert key not in store
        assert store.entries() == []
        assert store.get(key) is None
        assert store.stats()["n_entries"] == 0

    def test_evict_between_exists_check_and_write_is_undone(
        self, tmp_path, monkeypatch
    ):
        """The narrower window: evict lands after _touch's payload check."""
        from repro.store import store as store_module

        store = ResultStore(tmp_path)
        key = self._entry(store)
        real_write = store_module._atomic_write_bytes
        sidecar = store._meta_path(key)

        def racing_write(path, data):
            if path == sidecar:
                ResultStore(tmp_path).evict(key)
            return real_write(path, data)

        monkeypatch.setattr(store_module, "_atomic_write_bytes", racing_write)
        assert store.get(key) == {"rows": list(range(8))}
        monkeypatch.undo()
        assert store.entries() == []
        assert key not in store


# ---------------------------------------------------- single-flight locking


class TestSingleFlight:
    def test_n_concurrent_callers_one_compute(self, tmp_path):
        import threading

        store = ResultStore(tmp_path)
        key = report_key({"singleflight": "threads"})
        calls = []
        calls_lock = threading.Lock()

        def compute():
            with calls_lock:
                calls.append(1)
            time.sleep(0.3)  # hold the lock long enough for all waiters
            return {"value": 42}

        results = [None] * 8
        def call(slot):
            results[slot] = store.get_or_compute(key, compute, timeout=30.0)

        threads = [
            threading.Thread(target=call, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert results == [{"value": 42}] * 8
        assert len(calls) == 1, f"expected one compute, got {len(calls)}"
        assert store.get(key) == {"value": 42}
        assert not store._lock_path(key).exists()

    def test_stale_lock_of_dead_producer_is_broken(self, tmp_path):
        import multiprocessing

        # A real pid that no longer exists: a child that already exited.
        child = multiprocessing.get_context("fork").Process(target=lambda: None)
        child.start()
        child.join(timeout=10.0)
        store = ResultStore(tmp_path)
        key = report_key({"singleflight": "stale"})
        lock_path = store._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_path.write_text(json.dumps({"pid": child.pid, "created_unix": 0}))
        assert store.try_claim(key) is True  # broke the dead claim
        assert store.release(key) is True

    def test_live_lock_blocks_claim_and_times_out_waiters(self, tmp_path):
        store = ResultStore(tmp_path)
        key = report_key({"singleflight": "live"})
        assert store.try_claim(key) is True
        try:
            assert store.try_claim(key) is False  # our own live claim holds
            assert store.wait_for(key, timeout=0.3, poll=0.02) is None
        finally:
            assert store.release(key) is True
        assert store.release(key) is False  # idempotent

    def test_waiter_rescues_when_producer_never_publishes(self, tmp_path):
        store = ResultStore(tmp_path)
        key = report_key({"singleflight": "rescue"})
        assert store.try_claim(key) is True  # a producer that never publishes
        try:
            value = store.get_or_compute(
                key, lambda: {"rescued": True}, timeout=0.3
            )
        finally:
            store.release(key)
        assert value == {"rescued": True}
        assert store.get(key) == {"rescued": True}

    def test_publish_then_release_is_seen_by_waiters(self, tmp_path):
        store = ResultStore(tmp_path)
        key = report_key({"singleflight": "published"})
        assert store.try_claim(key) is True
        store.put(key, {"done": 1})
        store.release(key)
        assert store.wait_for(key, timeout=5.0) == {"done": 1}
        # And get_or_compute never calls compute for a published key.
        sentinel = []
        value = store.get_or_compute(
            key, lambda: sentinel.append(1) or {"recomputed": True}
        )
        assert value == {"done": 1}
        assert sentinel == []

    def test_failed_compute_releases_the_lock(self, tmp_path):
        store = ResultStore(tmp_path)
        key = report_key({"singleflight": "failure"})
        with pytest.raises(RuntimeError, match="compute exploded"):
            store.get_or_compute(
                key, lambda: (_ for _ in ()).throw(RuntimeError("compute exploded"))
            )
        # The claim was released on the way out: the key is retryable.
        assert store.try_claim(key) is True
        store.release(key)
        assert store.get_or_compute(key, lambda: {"ok": 1}) == {"ok": 1}

    def test_plain_miss_never_evicts(self, tmp_path, monkeypatch):
        """A missing-entry miss must not call evict: a get that read the
        pre-publish state would otherwise destroy a concurrent put's fresh
        entry (the sidecar is the commit marker — nothing to clean up)."""
        store = ResultStore(tmp_path)
        key = report_key({"singleflight": "plain-miss"})
        evictions = []
        monkeypatch.setattr(
            store, "evict", lambda k: evictions.append(k) or True
        )
        assert store.get(key) is None
        assert evictions == []
        # Corrupt *committed* entries still self-heal through eviction.
        store.put(key, {"value": 1})
        store._payload_path(key).write_bytes(b"garbage")
        assert store.get(key) is None
        assert evictions == [key]

    def test_instant_compute_hammering_one_compute_per_round(self, tmp_path):
        """Single-flight with an instant compute: the put lands inside the
        tiny window between a racer's first miss and its claim, which used
        to let the miss path evict the freshly published entry and force a
        second compute.  Many short rounds make that window hot."""
        import threading

        store = ResultStore(tmp_path)
        for round_index in range(20):
            key = report_key({"singleflight": "instant", "round": round_index})
            calls = []
            calls_lock = threading.Lock()

            def compute():
                with calls_lock:
                    calls.append(1)
                return {"round": round_index}

            results = [None] * 4
            def call(slot):
                results[slot] = store.get_or_compute(key, compute, timeout=30.0)

            threads = [
                threading.Thread(target=call, args=(slot,)) for slot in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert results == [{"round": round_index}] * 4
            assert len(calls) == 1, (
                f"round {round_index}: expected one compute, got {len(calls)}"
            )

    def test_clear_removes_lock_residue(self, tmp_path):
        store = ResultStore(tmp_path)
        key = report_key({"singleflight": "clear"})
        store.put(key, {"x": 1})
        assert store.try_claim(report_key({"singleflight": "other"})) is True
        assert store.clear() == 1
        assert not (tmp_path / "locks").exists()
        assert store.try_claim(key) is True
        store.release(key)
