"""Shared configuration and helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper on the synthetic
substrate.  The workload sizes below are chosen so that the full suite
(``pytest benchmarks/ --benchmark-only``) completes in a few minutes on a
laptop; they can be scaled up with the ``REPRO_BENCH_SCALE`` environment
variable (a float multiplier on the number of images/sequences).

Each bench writes its paper-style rows both to stdout and to
``benchmarks/artifacts/<name>.txt`` so the numbers can be inspected after the
run (EXPERIMENTS.md is written from these artifacts).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

import pytest

from repro.segmentation.scene import SceneConfig
from repro.segmentation.sequence import SequenceConfig

#: Directory where benches drop their textual / PPM artifacts.
ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"

#: Tracked directory for committed benchmark summaries.  Unlike
#: ``benchmarks/artifacts`` (gitignored, regenerated every run), JSONs written
#: here are committed so the perf trajectory survives across PRs; benches only
#: write them in full (non-smoke) mode so CI smoke runs never dirty the tree.
TRAJECTORY_DIR = Path(__file__).resolve().parent / "trajectory"

#: Global scale factor for the benchmark workloads.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Image size used by the single-frame (Cityscapes-like) benches.
BENCH_SCENE_CONFIG = SceneConfig(height=96, width=192)

#: Video configuration used by the Section III benches.
BENCH_SEQUENCE_CONFIG = SequenceConfig(
    n_frames=10, scene_config=SceneConfig(height=80, width=160)
)


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an integer workload size by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(round(value * SCALE)))


def write_artifact(name: str, rows: Iterable[str]) -> Path:
    """Write benchmark output rows to ``benchmarks/artifacts/<name>.txt``."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / f"{name}.txt"
    text = "\n".join(rows) + "\n"
    path.write_text(text)
    print(text)
    return path


def _write_bench_record(directory: Path, name: str, payload: dict) -> Path:
    """Write one ``BENCH_<name>.json`` record into *directory*."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    record = {"bench": name, "unit": "seconds"}
    record.update(payload)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def write_bench_json(name: str, payload: dict) -> Path:
    """Write a benchmark result to ``benchmarks/artifacts/BENCH_<name>.json``.

    The standard shape is ``{"bench": <name>, "unit": "seconds", "cases":
    [...]}`` plus free-form configuration keys, so successive runs of a bench
    can be diffed to track the performance trajectory.
    """
    return _write_bench_record(ARTIFACT_DIR, name, payload)


def write_trajectory_json(name: str, payload: dict) -> Path:
    """Write a committed benchmark summary to ``benchmarks/trajectory``.

    Same record shape as :func:`write_bench_json`; call only from full
    (non-smoke) benchmark runs.
    """
    return _write_bench_record(TRAJECTORY_DIR, name, payload)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    """Artifact directory (created on first use)."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    return ARTIFACT_DIR
