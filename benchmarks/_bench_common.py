"""Shared configuration and helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper on the synthetic
substrate.  The workload sizes below are chosen so that the full suite
(``pytest benchmarks/ --benchmark-only``) completes in a few minutes on a
laptop; they can be scaled up with the ``REPRO_BENCH_SCALE`` environment
variable (a float multiplier on the number of images/sequences).

Each bench writes its paper-style rows both to stdout and to
``benchmarks/artifacts/<name>.txt`` so the numbers can be inspected after the
run (EXPERIMENTS.md is written from these artifacts).
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path
from typing import Callable, Iterable, List

import pytest

from repro.segmentation.scene import SceneConfig
from repro.segmentation.sequence import SequenceConfig

#: Directory where benches drop their textual / PPM artifacts.
ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"

#: Tracked directory for committed benchmark summaries.  Unlike
#: ``benchmarks/artifacts`` (gitignored, regenerated every run), JSONs written
#: here are committed so the perf trajectory survives across PRs; benches only
#: write them in full (non-smoke) mode so CI smoke runs never dirty the tree.
TRAJECTORY_DIR = Path(__file__).resolve().parent / "trajectory"

#: Global scale factor for the benchmark workloads.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Image size used by the single-frame (Cityscapes-like) benches.
BENCH_SCENE_CONFIG = SceneConfig(height=96, width=192)

#: Video configuration used by the Section III benches.
BENCH_SEQUENCE_CONFIG = SequenceConfig(
    n_frames=10, scene_config=SceneConfig(height=80, width=160)
)


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an integer workload size by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(round(value * SCALE)))


def write_artifact(name: str, rows: Iterable[str]) -> Path:
    """Write benchmark output rows to ``benchmarks/artifacts/<name>.txt``."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / f"{name}.txt"
    text = "\n".join(rows) + "\n"
    path.write_text(text)
    print(text)
    return path


def _write_bench_record(directory: Path, name: str, payload: dict) -> Path:
    """Write one ``BENCH_<name>.json`` record into *directory*."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    record = {"bench": name, "unit": "seconds"}
    record.update(payload)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def write_bench_json(name: str, payload: dict) -> Path:
    """Write a benchmark result to ``benchmarks/artifacts/BENCH_<name>.json``.

    The standard shape is ``{"bench": <name>, "unit": "seconds", "cases":
    [...]}`` plus free-form configuration keys, so successive runs of a bench
    can be diffed to track the performance trajectory.
    """
    return _write_bench_record(ARTIFACT_DIR, name, payload)


def write_trajectory_json(name: str, payload: dict) -> Path:
    """Write a committed benchmark summary to ``benchmarks/trajectory``.

    Same record shape as :func:`write_bench_json`; call only from full
    (non-smoke) benchmark runs.
    """
    return _write_bench_record(TRAJECTORY_DIR, name, payload)


def interleaved_times(
    fns: List[Callable[[], object]], repeats: int
) -> List[List[float]]:
    """Per-repeat wall-clock timings with all paths interleaved, GC parked.

    Interleaving keeps machine drift (thermal throttling, background load)
    from being attributed to whichever path runs last, rotating the start
    slot each repeat cancels fixed position effects (a periodic background
    task aliasing with the loop), and disabling the cyclic GC keeps
    collection pauses from landing in one path's slot.  Returns one list of
    ``repeats`` durations per input callable.
    """
    times: List[List[float]] = [[] for _ in fns]
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for repeat in range(repeats):
            for offset in range(len(fns)):
                slot = (repeat + offset) % len(fns)
                start = time.perf_counter()
                fns[slot]()
                times[slot].append(time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return times


def median(values: List[float]) -> float:
    """Median of a non-empty list (mean of the middle pair when even)."""
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def overhead_fraction(
    candidate_times: List[float], baseline_times: List[float]
) -> float:
    """Noise-robust overhead fraction of a candidate path over a baseline.

    Scheduling noise on a loaded CI box is strictly additive, so every
    timing-ratio estimator is biased upward.  This takes the LOWER of two
    estimators with independent failure modes — the ratio of per-path
    medians (robust to a lucky single sample) and the ratio of per-path
    minima (robust to a contaminated majority of repeats) — so a spurious
    gate failure needs noise to inflate both at once.  A real regression
    inflates both.
    """
    by_median = median(candidate_times) / median(baseline_times)
    by_min = min(candidate_times) / min(baseline_times)
    return min(by_median, by_min) - 1.0


def gated_overhead(
    fns: List[Callable[[], object]],
    repeats: int,
    gate: float,
    candidate_index: int = 1,
    baseline_index: int = 0,
    attempts: int = 3,
) -> tuple:
    """Measure an overhead gate with retry-on-breach.

    A single timing window (one :func:`interleaved_times` call) can land
    entirely inside a multi-second background-load spike, inflating every
    estimator at once.  On a breach the whole measurement is redone in a
    fresh window, up to ``attempts`` times, and the lowest overhead seen
    wins: noise rarely contaminates several independent windows, while a
    real regression fails all of them.  Returns ``(times, overhead)`` for
    the winning window.
    """
    best_times: List[List[float]] = []
    best_overhead = float("inf")
    for _ in range(attempts):
        times = interleaved_times(fns, repeats)
        overhead = overhead_fraction(times[candidate_index], times[baseline_index])
        if overhead < best_overhead:
            best_times, best_overhead = times, overhead
        if best_overhead < gate:
            break
    return best_times, best_overhead


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    """Artifact directory (created on first use)."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    return ARTIFACT_DIR
