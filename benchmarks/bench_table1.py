"""Table I — meta classification and meta regression on Cityscapes-like data.

Regenerates, for both network profiles (Xception65-like and MobilenetV2-like):

* meta classification ACC and AUROC for the penalised and unpenalised
  logistic models, the entropy-only baseline and the naive random baseline;
* meta regression σ and R² for the linear model on all metrics and for the
  entropy-only baseline;

averaged over 10 random 80/20 splits of the segment dataset, exactly like the
paper's protocol.  The ``benchmark`` fixture times one protocol run (all model
fits for one split); the full table is printed and written to
``benchmarks/artifacts/table1.txt``.
"""

from __future__ import annotations

from _bench_common import BENCH_SCENE_CONFIG, scaled, write_artifact

from repro.core.meta_classification import MetaClassifier
from repro.core.pipeline import MetaSegPipeline
from repro.segmentation.datasets import CityscapesLikeDataset
from repro.segmentation.network import (
    SimulatedSegmentationNetwork,
    mobilenetv2_profile,
    xception65_profile,
)

N_IMAGES = scaled(24)
N_RUNS = scaled(10, minimum=3)


def run() -> dict:
    """Regenerate Table I; returns {network name: MetaSegResult}."""
    results = {}
    for profile in (xception65_profile(), mobilenetv2_profile()):
        dataset = CityscapesLikeDataset(
            n_train=0, n_val=N_IMAGES, scene_config=BENCH_SCENE_CONFIG, random_state=0
        )
        network = SimulatedSegmentationNetwork(profile, random_state=1)
        pipeline = MetaSegPipeline(network)
        metrics = pipeline.extract_dataset(dataset.val_samples())
        results[profile.name] = pipeline.run_table1_protocol(
            metrics, n_runs=N_RUNS, random_state=2
        )
    return results


def test_benchmark_table1(benchmark):
    """Time one split worth of meta-model training and report the full table."""
    dataset = CityscapesLikeDataset(
        n_train=0, n_val=scaled(8), scene_config=BENCH_SCENE_CONFIG, random_state=10
    )
    network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=11)
    pipeline = MetaSegPipeline(network)
    metrics = pipeline.extract_dataset(dataset.val_samples())
    train, test = metrics.split((0.8, 0.2), random_state=0)

    def _one_split():
        return MetaClassifier(method="logistic", penalty=1.0).evaluate(train, test)

    benchmark(_one_split)

    results = run()
    rows = ["Table I reproduction (synthetic substrate)", ""]
    for name, result in results.items():
        rows.extend(result.summary_rows())
        rows.append("")
    write_artifact("table1", rows)

    # The paper's orderings must hold.
    for result in results.values():
        assert (
            result.classification["logistic_penalized"]["test_auroc"][0]
            > result.classification["entropy_only"]["test_auroc"][0]
        )
        assert (
            result.regression["linear_all_metrics"]["test_r2"][0]
            > result.regression["entropy_only"]["test_r2"][0]
        )
