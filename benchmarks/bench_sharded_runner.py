"""Benchmark — sharded process-pool Runner backend vs. the serial path.

The ``process`` execution backend shards the workload's index range across a
``ProcessPoolExecutor``; every shard rebuilds its components from the config
and the derived seeds, so the merged result is **bitwise identical** to the
serial path.  This bench:

1. asserts that bitwise parity on a metaseg workload (process backend *and*
   the streaming aggregation path) — always a hard gate;
2. times the serial and sharded paths end to end and records the speedup in
   ``benchmarks/artifacts/BENCH_sharded_runner.json``.

The speedup gate (>= 2x at 4 workers, enforced through the exit code) only
engages when the machine actually has at least as many CPU cores as
requested shards: a process pool cannot beat serial execution on a
single-core container, and pretending otherwise would just teach people to
ignore the gate.  Whether the gate was enforced or skipped — and why — is
recorded in the artifact.

Invocation:

    PYTHONPATH=src:benchmarks python benchmarks/bench_sharded_runner.py          # full, 4 workers
    PYTHONPATH=src:benchmarks python benchmarks/bench_sharded_runner.py --smoke  # CI, 2 workers
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List

from _bench_common import scaled, write_artifact, write_bench_json

from repro.api.config import (
    DataConfig,
    EvalConfig,
    ExecutionConfig,
    ExperimentConfig,
)
from repro.api.runner import ExperimentReport, Runner

#: Required speedup of the sharded path at the full worker count.
MIN_SPEEDUP = 2.0

#: Worker counts per mode.
FULL_WORKERS = 4
SMOKE_WORKERS = 2


def make_config(smoke: bool, execution: ExecutionConfig) -> ExperimentConfig:
    """An extraction-dominated metaseg workload (the protocol stays tiny)."""
    n_val = 8 if smoke else scaled(24)
    height, width = (64, 128) if smoke else (96, 192)
    return ExperimentConfig(
        kind="metaseg",
        name="sharded-runner",
        seed=0,
        data=DataConfig(dataset="cityscapes_like", n_val=n_val, height=height, width=width),
        evaluation=EvalConfig(n_runs=1),
        execution=execution,
    )


def check_parity(serial: ExperimentReport, other: ExperimentReport, label: str) -> None:
    """Hard gate: tables and provenance must be bitwise equal to serial."""
    assert other.tables == serial.tables, f"{label}: tables differ from serial"
    assert other.provenance == serial.provenance, (
        f"{label}: provenance differs from serial"
    )


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(smoke: bool = False) -> dict:
    workers = SMOKE_WORKERS if smoke else FULL_WORKERS
    runner = Runner()
    serial_config = make_config(smoke, ExecutionConfig(backend="serial"))
    sharded_config = make_config(
        smoke, ExecutionConfig(backend="process", workers=workers)
    )
    streaming_config = make_config(
        smoke, ExecutionConfig(backend="serial", streaming=True)
    )

    # Parity first (also warms every path before the timing runs).
    serial_report = runner.run(serial_config)
    check_parity(serial_report, runner.run(sharded_config), f"process@{workers}")
    check_parity(serial_report, runner.run(streaming_config), "streaming")

    repeats = 2 if smoke else 3
    serial_seconds = best_of(lambda: runner.run(serial_config), repeats)
    sharded_seconds = best_of(lambda: runner.run(sharded_config), repeats)
    speedup = serial_seconds / sharded_seconds

    n_cpus = os.cpu_count() or 1
    if smoke:
        gate = "skipped (smoke mode: parity only)"
        enforce_speedup = False
    elif n_cpus < workers:
        gate = f"skipped ({n_cpus} CPU core(s) < {workers} workers)"
        enforce_speedup = False
    else:
        gate = f"enforced (>= {MIN_SPEEDUP:.1f}x)"
        enforce_speedup = True

    config = serial_config
    payload = {
        "mode": "smoke" if smoke else "full",
        "min_speedup": MIN_SPEEDUP,
        "n_cpus": n_cpus,
        "speedup_gate": gate,
        "cases": [
            {
                "case": "metaseg_extraction",
                "workers": workers,
                "n_val": config.data.n_val,
                "height": config.data.height,
                "width": config.data.width,
                "repeats": repeats,
                "serial_seconds": serial_seconds,
                "sharded_seconds": sharded_seconds,
                "speedup": speedup,
                "parity": "bitwise (process + streaming vs serial)",
            }
        ],
    }
    rows = [
        f"Sharded process-pool Runner backend vs serial ({config.data.n_val} images "
        f"at {config.data.height}x{config.data.width}, {workers} workers, {n_cpus} CPU core(s))",
        "  parity   process + streaming bitwise-equal to serial: OK",
        f"  serial   {serial_seconds * 1e3:8.1f} ms",
        f"  sharded  {sharded_seconds * 1e3:8.1f} ms",
        f"  speedup  {speedup:6.2f}x  (gate: {gate})",
    ]
    write_artifact("sharded_runner", rows)
    write_bench_json("sharded_runner", payload)
    payload["enforce_speedup"] = enforce_speedup
    return payload


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload at 2 workers; parity gate only (CI)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)  # parity asserts are the hard gate
    speedup = payload["cases"][0]["speedup"]
    if payload["enforce_speedup"] and speedup < MIN_SPEEDUP:
        print(
            f"FAIL: sharded speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP:.1f}x gate on {payload['n_cpus']} CPU cores",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
