"""Shared (cached) time-dynamic workload for the Fig. 2 and Table II benches.

Processing the KITTI-like video dataset (per-frame inference with two
networks, pseudo labelling, metric extraction, tracking) is the expensive
part of the Section III experiments; the Fig. 2 and Table II benches share
one cached copy of it and of the protocol results so the benchmark suite does
not pay for it twice.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from _bench_common import BENCH_SEQUENCE_CONFIG, scaled

from repro.segmentation.datasets import KittiLikeDataset
from repro.segmentation.network import (
    SimulatedSegmentationNetwork,
    mobilenetv2_profile,
    xception65_profile,
)
from repro.timedynamic.pipeline import TimeDynamicPipeline, TimeDynamicResult
from repro.timedynamic.time_series import SequenceMetrics

#: Number of synthetic video sequences (the paper uses 29 KITTI sequences).
N_SEQUENCES = scaled(3)
#: Frame history lengths evaluated (the paper sweeps 0..10).
N_FRAMES_LIST = (0, 2, 4, 6)
#: Random train/val/test resamplings (the paper uses 10).
N_RUNS = scaled(3, minimum=2)

_CACHE: Dict[str, object] = {}


def build_pipeline() -> TimeDynamicPipeline:
    """The Section III pipeline: MobilenetV2 under test, Xception65 as reference."""
    return TimeDynamicPipeline(
        test_network=SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=20),
        reference_network=SimulatedSegmentationNetwork(xception65_profile(), random_state=21),
        gradient_boosting_params={
            "n_estimators": 30, "max_depth": 3, "max_features": "sqrt", "subsample": 0.8,
        },
        neural_network_params={"hidden_layer_sizes": (24,), "n_epochs": 60},
    )


def processed_sequences() -> Tuple[TimeDynamicPipeline, List[SequenceMetrics]]:
    """Run (or reuse) inference + tracking over the video dataset."""
    if "sequences" not in _CACHE:
        dataset = KittiLikeDataset(
            n_sequences=N_SEQUENCES,
            sequence_config=BENCH_SEQUENCE_CONFIG,
            labeled_stride=3,
            random_state=22,
        )
        pipeline = build_pipeline()
        _CACHE["pipeline"] = pipeline
        _CACHE["sequences"] = pipeline.process_dataset(dataset)
    return _CACHE["pipeline"], _CACHE["sequences"]


def protocol_result() -> TimeDynamicResult:
    """Run (or reuse) the full composition x method x #frames protocol."""
    if "result" not in _CACHE:
        pipeline, sequences = processed_sequences()
        _CACHE["result"] = pipeline.run_protocol(
            sequences,
            n_frames_list=N_FRAMES_LIST,
            compositions=("R", "RA", "RAP", "RP", "P"),
            methods=("gradient_boosting", "neural_network"),
            n_runs=N_RUNS,
            random_state=23,
        )
    return _CACHE["result"]
