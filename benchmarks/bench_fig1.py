"""Fig. 1 — visualisation of true vs. predicted segment-wise IoU.

Trains the linear meta regressor on all but one image, predicts the IoU of
every segment of the held-out image, and writes the four Fig.-1 panels
(ground truth, prediction, true IoU, predicted IoU) as PPM files to
``benchmarks/artifacts/``.  The benchmark times the per-image prediction step
(metric extraction + regression inference), i.e. the deployment-time cost of
MetaSeg quality estimation.
"""

from __future__ import annotations

from _bench_common import ARTIFACT_DIR, BENCH_SCENE_CONFIG, scaled, write_artifact

from repro.core.meta_regression import MetaRegressor
from repro.core.pipeline import MetaSegPipeline
from repro.core.visualization import dataset_iou_maps, fig1_panels, write_ppm
from repro.evaluation.regression import pearson_correlation, r2_score
from repro.segmentation.datasets import CityscapesLikeDataset
from repro.segmentation.network import SimulatedSegmentationNetwork, xception65_profile

N_IMAGES = scaled(16)


def run() -> dict:
    """Regenerate the Fig. 1 panels and the associated quality numbers."""
    dataset = CityscapesLikeDataset(
        n_train=0, n_val=N_IMAGES, scene_config=BENCH_SCENE_CONFIG, random_state=3
    )
    network = SimulatedSegmentationNetwork(xception65_profile(), random_state=4)
    pipeline = MetaSegPipeline(network)
    samples = dataset.val_samples()
    training_metrics = pipeline.extract_dataset(samples[:-1])
    regressor = MetaRegressor(method="linear", penalty=1.0).fit(training_metrics)

    held_out = samples[-1]
    probs = network.predict_probabilities(held_out.labels, index=len(samples) - 1)
    image_metrics = pipeline.extractor.extract_full(
        probs, gt_labels=held_out.labels, image_id=held_out.image_id
    )
    predicted = regressor.predict(image_metrics.dataset)
    true_iou = image_metrics.dataset.target_iou()
    maps = dataset_iou_maps(image_metrics.dataset, image_metrics.prediction, predicted)
    panels = fig1_panels(held_out.labels, image_metrics.prediction, maps["true"], maps["predicted"])
    for name, rgb in panels.items():
        write_ppm(ARTIFACT_DIR / f"fig1_{name}.ppm", rgb)
    return {
        "n_segments": len(image_metrics.dataset),
        "r2": r2_score(true_iou, predicted),
        "pearson": pearson_correlation(true_iou, predicted),
    }


def test_benchmark_fig1(benchmark):
    """Time MetaSeg deployment (extract metrics + predict IoU) on one image."""
    dataset = CityscapesLikeDataset(
        n_train=0, n_val=scaled(8), scene_config=BENCH_SCENE_CONFIG, random_state=5
    )
    network = SimulatedSegmentationNetwork(xception65_profile(), random_state=6)
    pipeline = MetaSegPipeline(network)
    samples = dataset.val_samples()
    training_metrics = pipeline.extract_dataset(samples[:-1])
    regressor = MetaRegressor(method="linear", penalty=1.0).fit(training_metrics)
    held_out = samples[-1]
    probs = network.predict_probabilities(held_out.labels, index=99)

    def _predict_quality():
        metrics = pipeline.extractor.extract(probs, gt_labels=None, image_id="deploy")
        return regressor.predict(metrics)

    benchmark(_predict_quality)

    info = run()
    rows = [
        "Fig. 1 reproduction (panels written as PPM files)",
        f"held-out image segments: {info['n_segments']}",
        f"IoU prediction R2:       {100 * info['r2']:.2f}%",
        f"IoU prediction Pearson R:{info['pearson']:.3f}",
        f"panels: {ARTIFACT_DIR}/fig1_ground_truth.ppm, fig1_prediction.ppm, "
        "fig1_true_iou.ppm, fig1_predicted_iou.ppm",
    ]
    write_artifact("fig1", rows)
    assert info["pearson"] > 0.5
