"""Benchmark — telemetry overhead of the span-instrumented Runner.

PR 9 replaced the Runner's hand-rolled ``time.perf_counter`` stage timings
with hierarchical spans (:mod:`repro.obs`).  This bench reconstructs the
pre-telemetry Runner path — same resolve/extract/evaluate pipeline, stage
timings stamped by a bare ``perf_counter`` context manager — and times it
against the instrumented ``Runner().run`` on the same workload.  The gate:
the default tracer (a private per-run :class:`repro.obs.Tracer` feeding the
``report.timings`` view) costs < 3 % wall clock over the hand-rolled
baseline, measured over rotated interleaved repeats with GC parked (the
lower of the median-ratio and min-ratio estimators) so load spikes on a
busy CI box cannot fail the gate.
``NULL_TRACER`` and a shared full-tree tracer are timed as info rows, and
parity is asserted both ways (baseline numbers == report numbers; traced
``to_json`` == untraced ``to_json``).

Results are written to ``benchmarks/artifacts/BENCH_obs_overhead.json``
(and to ``benchmarks/trajectory/`` in full mode).

Invocation:

    PYTHONPATH=src:benchmarks python benchmarks/bench_obs_overhead.py          # full
    PYTHONPATH=src:benchmarks python benchmarks/bench_obs_overhead.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from typing import Dict, List, Tuple

from _bench_common import (
    gated_overhead,
    scaled,
    write_artifact,
    write_bench_json,
    write_trajectory_json,
)

from repro.api.config import DataConfig, EvalConfig, ExperimentConfig
from repro.api.registry import EXECUTION_BACKENDS
from repro.api.runner import Runner
from repro.obs import NULL_TRACER, Tracer

#: Allowed overhead of the default (per-run) tracer over hand-rolled timings.
MAX_OVERHEAD_FRACTION = 0.03


def make_config(smoke: bool) -> ExperimentConfig:
    n_val = 4 if smoke else scaled(12)
    height, width = (64, 128) if smoke else (96, 192)
    return ExperimentConfig(
        kind="metaseg",
        name="obs-overhead",
        seed=0,
        data=DataConfig(dataset="cityscapes_like", n_val=n_val, height=height, width=width),
        evaluation=EvalConfig(n_runs=2 if smoke else 5),
    )


@contextmanager
def _timer(timings: Dict[str, float], key: str):
    """The pre-telemetry Runner's stage timer, byte for byte."""
    start = time.perf_counter()
    try:
        yield
    finally:
        timings[key] = time.perf_counter() - start


def run_baseline(config: ExperimentConfig) -> Tuple[object, Dict[str, float]]:
    """The pre-PR Runner path: same pipeline, hand-rolled stage timings."""
    runner = Runner(tracer=NULL_TRACER)
    timings: Dict[str, float] = {}
    with _timer(timings, "total"):
        with _timer(timings, "resolve"):
            resolved = runner.resolve(config)
            backend = EXECUTION_BACKENDS.get(config.execution.backend)(config.execution)
        pipeline = runner.build_metaseg_pipeline(resolved)
        with _timer(timings, "extract"):
            metrics, _ = backend.extract_metaseg(runner, resolved, pipeline)
        with _timer(timings, "evaluate"):
            result = pipeline.run_table1_protocol(
                metrics,
                n_runs=config.evaluation.n_runs,
                train_fraction=config.evaluation.train_fraction,
                random_state=resolved.seeds.protocol,
                classification_methods=resolved.classifiers,
                regression_methods=resolved.regressors,
                feature_subset=resolved.feature_subset,
                model_params=config.meta_models.model_params,
            )
    return result, timings


def check_parity(config: ExperimentConfig) -> None:
    """Instrumented Runner numbers == baseline numbers; tracing is bit-free."""
    report = Runner().run(config)
    result, timings = run_baseline(config)
    assert {"resolve", "extract", "evaluate", "total"} <= set(report.timings)
    assert set(timings) <= set(report.timings)
    for row in report.table("classification"):
        if row["variant"] == "naive":
            assert row["mean"] == result.naive_accuracy
            continue
        mean, std = result.classification[row["variant"]][row["metric"]]
        assert (row["mean"], row["std"]) == (mean, std), row
    traced = Runner(tracer=Tracer()).run(config)
    untraced = Runner(tracer=NULL_TRACER).run(config)
    assert traced.to_json() == untraced.to_json()
    assert untraced.timings == {}


def run(smoke: bool = False) -> dict:
    """Time all tracer modes against the baseline and write the artifacts."""
    config = make_config(smoke)
    # The true overhead is a handful of span allocations (~µs) against a
    # pipeline run of hundreds of ms, so the measurement is noise-bound.
    # The gate is estimated over rotated interleaved repeats with
    # retry-on-breach (_bench_common.gated_overhead) — robust to
    # multi-second load spikes on a busy CI box.
    repeats = 9 if smoke else 11
    # Warm-up every path once (registry loading, numpy caches) before timing.
    check_parity(config)
    default_runner = Runner()
    null_runner = Runner(tracer=NULL_TRACER)
    shared = Tracer()
    shared_runner = Runner(tracer=shared)
    (baseline_t, default_t, null_t, shared_t), overhead = gated_overhead(
        [
            lambda: run_baseline(config),
            lambda: default_runner.run(config),
            lambda: null_runner.run(config),
            lambda: shared_runner.run(config),
        ],
        repeats,
        MAX_OVERHEAD_FRACTION,
        candidate_index=1,
        baseline_index=0,
    )
    baseline_s, default_s, null_s, shared_s = (
        min(baseline_t), min(default_t), min(null_t), min(shared_t)
    )
    probe = Tracer()
    Runner(tracer=probe).run(config)
    payload = {
        "mode": "smoke" if smoke else "full",
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "cases": [
            {
                "case": "metaseg_table1",
                "n_val": config.data.n_val,
                "height": config.data.height,
                "width": config.data.width,
                "n_runs": config.evaluation.n_runs,
                "repeats": repeats,
                "baseline_seconds": baseline_s,
                "default_tracer_seconds": default_s,
                "null_tracer_seconds": null_s,
                "shared_tracer_seconds": shared_s,
                "overhead_fraction": overhead,
                "n_spans_per_run": len(probe.records()),
            }
        ],
    }
    rows = [
        "Telemetry overhead of the span-instrumented Runner",
        f"  baseline (hand-rolled timings) {baseline_s * 1e3:8.1f} ms",
        f"  Runner, default tracer         {default_s * 1e3:8.1f} ms",
        f"  Runner, NULL_TRACER            {null_s * 1e3:8.1f} ms",
        f"  Runner, shared full-tree       {shared_s * 1e3:8.1f} ms",
        f"  default-tracer overhead {100 * overhead:+6.2f}%  "
        f"(noise-robust ratio; gate: < {100 * MAX_OVERHEAD_FRACTION:.0f}%)",
    ]
    write_artifact("obs_overhead", rows)
    write_bench_json("obs_overhead", payload)
    if not smoke:
        write_trajectory_json("obs_overhead", payload)
    return payload


def test_obs_overhead():
    """Smoke-mode pytest entry: parity holds and overhead stays below the gate."""
    payload = run(smoke=True)
    assert payload["cases"][0]["overhead_fraction"] < MAX_OVERHEAD_FRACTION


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small single case for CI (full mode uses the scaled workload)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    overhead = payload["cases"][0]["overhead_fraction"]
    if overhead >= MAX_OVERHEAD_FRACTION:
        print(
            f"WARNING: telemetry overhead {100 * overhead:.2f}% exceeds the "
            f"{100 * MAX_OVERHEAD_FRACTION:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
