"""Section II claim — Pearson correlation of single metrics with segment IoU.

The paper reports |R| of up to ~0.85 between single constructed metrics and
the segment-wise IoU for both DeepLabv3+ networks.  This ablation bench
computes the correlation of every metric with the IoU for both simulated
profiles and additionally compares the metric *groups* (entropy only,
dispersion, geometry, full set) via the meta-regression R² they achieve.
"""

from __future__ import annotations

from _bench_common import BENCH_SCENE_CONFIG, scaled, write_artifact

from repro.core.meta_regression import MetaRegressor
from repro.core.metrics import METRIC_GROUPS
from repro.core.pipeline import MetaSegPipeline
from repro.segmentation.datasets import CityscapesLikeDataset
from repro.segmentation.network import (
    SimulatedSegmentationNetwork,
    mobilenetv2_profile,
    xception65_profile,
)

N_IMAGES = scaled(20)


def run() -> dict:
    """Return correlations and per-group regression R² for both profiles."""
    output = {}
    for profile in (xception65_profile(), mobilenetv2_profile()):
        dataset = CityscapesLikeDataset(
            n_train=0, n_val=N_IMAGES, scene_config=BENCH_SCENE_CONFIG, random_state=7
        )
        network = SimulatedSegmentationNetwork(profile, random_state=8)
        pipeline = MetaSegPipeline(network)
        metrics = pipeline.extract_dataset(dataset.val_samples())
        correlations = pipeline.metric_iou_correlations(metrics)
        train, test = metrics.split((0.8, 0.2), random_state=9)
        group_r2 = {}
        groups = {
            "entropy_only": list(METRIC_GROUPS["entropy_only"]),
            "dispersion": list(METRIC_GROUPS["dispersion"]),
            "geometry": list(METRIC_GROUPS["geometry"]),
            "all": None,
        }
        for group_name, subset in groups.items():
            regressor = MetaRegressor(method="linear", penalty=1.0, feature_subset=subset)
            group_r2[group_name] = regressor.evaluate(train, test).test_r2
        output[profile.name] = {"correlations": correlations, "group_r2": group_r2}
    return output


def test_benchmark_metric_correlations(benchmark):
    """Time the correlation analysis itself and print the ranked metrics."""
    dataset = CityscapesLikeDataset(
        n_train=0, n_val=scaled(8), scene_config=BENCH_SCENE_CONFIG, random_state=12
    )
    network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=13)
    pipeline = MetaSegPipeline(network)
    metrics = pipeline.extract_dataset(dataset.val_samples())
    benchmark(pipeline.metric_iou_correlations, metrics)

    output = run()
    rows = ["Section II correlation claim (|R| up to ~0.85 in the paper)", ""]
    for name, data in output.items():
        ranked = sorted(data["correlations"].items(), key=lambda kv: -abs(kv[1]))[:8]
        rows.append(f"{name}: top single-metric correlations with IoU")
        rows.extend(f"  {metric:<16s} R = {value:+.3f}" for metric, value in ranked)
        rows.append(f"{name}: meta-regression test R2 by metric group")
        rows.extend(
            f"  {group:<14s} R2 = {100 * value:6.2f}%"
            for group, value in data["group_r2"].items()
        )
        rows.append("")
        best = max(abs(v) for v in data["correlations"].values())
        assert best > 0.6
        assert data["group_r2"]["all"] >= data["group_r2"]["entropy_only"]
    write_artifact("correlations", rows)
