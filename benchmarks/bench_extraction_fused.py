"""Benchmark — fused single-pass metric extraction vs the seed path.

Times the fused :meth:`SegmentMetricsExtractor._compute_features` (one top-2
partition for V/M/pmax, one stacked-weights grouped bincount for all metric
columns) against the retained ``_reference_compute_features`` seed
implementation (one heatmap pass per dispersion measure, one bincount pass
per metric column) on synthetic softmax fields with hundreds of segments.
Bitwise parity of the full feature matrix — and of the assembled
``MetricsDataset`` — is asserted on every run; full mode enforces the
acceptance gate of the perf issue (fused >= 1.5x seed) via the exit code.

Invocation (argmax + segment decomposition are not part of the timed region):

    PYTHONPATH=src python benchmarks/bench_extraction_fused.py           # full
    PYTHONPATH=src python benchmarks/bench_extraction_fused.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from _bench_common import write_artifact, write_bench_json, write_trajectory_json

from repro.core.metrics import SegmentMetricsExtractor
from repro.core.segments import extract_segments
from repro.segmentation.labels import cityscapes_label_space

#: (name, height, width, cell) benchmark cases; the cell size keeps each field
#: at a few hundred predicted segments.
FULL_CASES = (
    ("256x512", 256, 512, 16),
    ("512x1024", 512, 1024, 32),
)
SMOKE_CASES = (("128x256_smoke", 128, 256, 16),)


def make_case(height: int, width: int, cell: int, n_classes: int, seed: int = 0):
    """Synthetic softmax field whose argmax decomposes into chunky segments."""
    rng = np.random.default_rng(seed)
    grid = rng.integers(0, n_classes, size=(height // cell + 1, width // cell + 1))
    bias = np.kron(grid, np.ones((cell, cell)))[:height, :width].astype(np.int64)
    logits = rng.normal(0.0, 1.0, size=(height, width, n_classes))
    logits[np.arange(height)[:, None], np.arange(width)[None, :], bias] += 4.0
    probs = np.exp(logits)
    probs /= probs.sum(axis=2, keepdims=True)
    prediction = extract_segments(np.argmax(probs, axis=2).astype(np.int64))
    return probs, prediction


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_case(name: str, height: int, width: int, cell: int, repeats: int) -> Dict[str, object]:
    """Time seed vs fused extraction on one synthetic case and check parity."""
    label_space = cityscapes_label_space()
    extractor = SegmentMetricsExtractor(label_space=label_space)
    probs, prediction = make_case(height, width, cell, label_space.n_classes)

    fused = extractor._compute_features(probs, prediction)
    reference = extractor._reference_compute_features(probs, prediction)
    if not np.array_equal(fused, reference):
        mismatches = int(np.count_nonzero(fused != reference))
        raise AssertionError(f"{name}: {mismatches} feature entries diverge from the seed path")
    # The assembled dataset (features + ids + names) must match bitwise too.
    dataset = extractor.extract(probs)
    if not (
        np.array_equal(dataset.features, reference)
        and dataset.feature_names == extractor.feature_names()
        and np.array_equal(dataset.segment_ids, np.array(prediction.segment_ids()))
    ):
        raise AssertionError(f"{name}: extracted MetricsDataset diverges from the seed path")

    reference_seconds = _best_of(
        lambda: extractor._reference_compute_features(probs, prediction), repeats
    )
    fused_seconds = _best_of(
        lambda: extractor._compute_features(probs, prediction), repeats
    )
    return {
        "case": name,
        "height": height,
        "width": width,
        "n_classes": label_space.n_classes,
        "n_segments": prediction.n_segments,
        "reference_seconds": reference_seconds,
        "fused_seconds": fused_seconds,
        "speedup": reference_seconds / fused_seconds if fused_seconds > 0 else float("inf"),
    }


def run(smoke: bool = False) -> dict:
    """Run all cases and write the artifacts."""
    cases = SMOKE_CASES if smoke else FULL_CASES
    repeats = 3 if smoke else 5
    results: List[Dict[str, object]] = [
        run_case(name, height, width, cell, repeats)
        for name, height, width, cell in cases
    ]
    rows = ["metric extraction: seed column-at-a-time path vs fused single-pass path"]
    for result in results:
        rows.append(
            f"  {result['case']:<14s} segments {result['n_segments']:4d}  "
            f"seed {result['reference_seconds'] * 1e3:8.1f} ms  "
            f"fused {result['fused_seconds'] * 1e3:7.1f} ms  "
            f"speedup {result['speedup']:5.1f}x"
        )
    write_artifact("extraction_fused", rows)
    payload = {"mode": "smoke" if smoke else "full", "cases": results}
    write_bench_json("extraction_fused", payload)
    if not smoke:
        write_trajectory_json("extraction_fused", payload)
    return payload


def test_extraction_fused_speedup():
    """Smoke-mode pytest entry: the fused path must beat the seed path."""
    payload = run(smoke=True)
    for result in payload["cases"]:
        assert result["n_segments"] >= 50
        assert result["speedup"] > 1.0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small single case for CI (full mode runs 256x512 and 512x1024)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    # Smoke runs (CI) gate parity (asserted inside run) plus a sanity
    # speedup; full runs enforce the acceptance criterion of the perf
    # issue: fused >= 1.5x the seed extraction path.
    min_speedup = 1.0 if args.smoke else 1.5
    big = payload["cases"][-1]
    if big["speedup"] < min_speedup:
        print(
            f"WARNING: speedup {big['speedup']:.2f}x below the {min_speedup:.1f}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
