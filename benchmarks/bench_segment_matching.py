"""Benchmark — vectorized contingency-table matching vs per-segment loops.

Times the three segment-matching primitives (`segment_ious`,
`false_negative_segments`, `segment_precision_recall`) against the retained
``_reference_*`` per-segment implementations on synthetic label maps with
hundreds of segments, at the resolutions named in the issue (256×512 and
512×1024).  Results are written both as human-readable rows and as
``benchmarks/artifacts/BENCH_segment_matching.json`` so the perf trajectory
of the matching hot path is recorded run over run.

Invocation (the segment decomposition itself is not part of the timed
region):

    PYTHONPATH=src python benchmarks/bench_segment_matching.py           # full
    PYTHONPATH=src python benchmarks/bench_segment_matching.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from _bench_common import write_artifact, write_bench_json

from repro.core.segments import (
    Segmentation,
    _reference_false_negative_segments,
    _reference_segment_ious,
    _reference_segment_precision_recall,
    extract_segments,
    false_negative_segments,
    segment_ious,
    segment_precision_recall,
)

#: (name, height, width, cell) benchmark cases; the cell size is chosen so
#: each map decomposes into roughly 300 predicted segments.
FULL_CASES = (
    ("256x512", 256, 512, 16),
    ("512x1024", 512, 1024, 32),
)
SMOKE_CASES = (("128x256_smoke", 128, 256, 16),)

N_CLASSES = 8
PR_CLASS_IDS = [1, 2]


def make_case(height: int, width: int, cell: int, seed: int = 0) -> Tuple[Segmentation, Segmentation]:
    """Synthetic GT/prediction pair with many chunky segments."""
    rng = np.random.default_rng(seed)
    grid = rng.integers(0, N_CLASSES, size=(height // cell, width // cell))
    gt = np.kron(grid, np.ones((cell, cell), dtype=np.int64)).astype(np.int64)
    # Sparse ignore rectangles.
    for _ in range(4):
        r0 = int(rng.integers(0, height - cell))
        c0 = int(rng.integers(0, width - cell))
        gt[r0:r0 + cell, c0:c0 + cell] = -1
    # Prediction: shifted ground truth plus rectangle noise, labels everywhere.
    pred = np.where(gt == -1, rng.integers(0, N_CLASSES, size=gt.shape), gt)
    pred = np.roll(pred, (cell // 3, -cell // 4), axis=(0, 1))
    for _ in range(12):
        r0 = int(rng.integers(0, height - cell))
        c0 = int(rng.integers(0, width - cell))
        pred[r0:r0 + cell // 2, c0:c0 + cell // 2] = int(rng.integers(0, N_CLASSES))
    prediction = extract_segments(pred)
    ground_truth = extract_segments(gt, ignore_id=-1)
    return prediction, ground_truth


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_case(
    name: str, height: int, width: int, cell: int, reference_repeats: int, fast_repeats: int
) -> Dict[str, object]:
    """Time old vs new matching on one synthetic case."""
    prediction, ground_truth = make_case(height, width, cell)

    pairs: Dict[str, Tuple[Callable[[], object], Callable[[], object]]] = {
        "segment_ious": (
            lambda: _reference_segment_ious(prediction, ground_truth),
            lambda: segment_ious(prediction, ground_truth),
        ),
        "false_negative_segments": (
            lambda: _reference_false_negative_segments(prediction, ground_truth),
            lambda: false_negative_segments(prediction, ground_truth),
        ),
        "segment_precision_recall": (
            lambda: _reference_segment_precision_recall(
                prediction, ground_truth, class_ids=PR_CLASS_IDS
            ),
            lambda: segment_precision_recall(prediction, ground_truth, class_ids=PR_CLASS_IDS),
        ),
    }
    per_function: Dict[str, Dict[str, float]] = {}
    reference_total = 0.0
    fast_total = 0.0
    for fn_name, (reference_fn, fast_fn) in pairs.items():
        reference_seconds = _best_of(reference_fn, reference_repeats)
        fast_seconds = _best_of(fast_fn, fast_repeats)
        per_function[fn_name] = {
            "reference_seconds": reference_seconds,
            "vectorized_seconds": fast_seconds,
            "speedup": reference_seconds / fast_seconds if fast_seconds > 0 else float("inf"),
        }
        reference_total += reference_seconds
        fast_total += fast_seconds
    return {
        "case": name,
        "height": height,
        "width": width,
        "n_pred_segments": prediction.n_segments,
        "n_gt_segments": ground_truth.n_segments,
        "reference_seconds": reference_total,
        "vectorized_seconds": fast_total,
        "speedup": reference_total / fast_total if fast_total > 0 else float("inf"),
        "per_function": per_function,
    }


def run(smoke: bool = False) -> dict:
    """Run all cases and write the artifacts."""
    cases = SMOKE_CASES if smoke else FULL_CASES
    reference_repeats = 1 if smoke else 2
    fast_repeats = 3 if smoke else 5
    results: List[Dict[str, object]] = [
        run_case(name, height, width, cell, reference_repeats, fast_repeats)
        for name, height, width, cell in cases
    ]
    rows = ["segment matching: per-segment reference vs contingency-table fast path"]
    for result in results:
        rows.append(
            f"  {result['case']:<14s} pred segments {result['n_pred_segments']:4d}  "
            f"gt segments {result['n_gt_segments']:4d}  "
            f"reference {result['reference_seconds'] * 1e3:9.1f} ms  "
            f"vectorized {result['vectorized_seconds'] * 1e3:7.1f} ms  "
            f"speedup {result['speedup']:6.1f}x"
        )
        for fn_name, timing in result["per_function"].items():
            rows.append(
                f"    {fn_name:<26s} {timing['reference_seconds'] * 1e3:9.1f} ms -> "
                f"{timing['vectorized_seconds'] * 1e3:7.1f} ms  ({timing['speedup']:6.1f}x)"
            )
    write_artifact("segment_matching", rows)
    payload = {"mode": "smoke" if smoke else "full", "cases": results}
    write_bench_json("segment_matching", payload)
    return payload


def test_segment_matching_speedup():
    """Smoke-mode pytest entry: the fast path must beat the reference."""
    payload = run(smoke=True)
    for result in payload["cases"]:
        assert result["n_pred_segments"] >= 50
        assert result["speedup"] > 1.0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small single case for CI (full mode runs 256x512 and 512x1024)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    if not args.smoke:
        # Acceptance criterion of the vectorization issue: >= 5x at 512x1024
        # with >= 200 segments.
        big = payload["cases"][-1]
        if big["n_pred_segments"] < 200:
            print(f"WARNING: only {big['n_pred_segments']} segments generated", file=sys.stderr)
        if big["speedup"] < 5.0:
            print(f"WARNING: speedup {big['speedup']:.1f}x below the 5x target", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
