"""Fig. 2 — meta classification AUROC vs. number of considered frames.

Regenerates both subfigures of Fig. 2: AUROC of false-positive detection as a
function of the time-series length, for the five training-data compositions
R / RA / RAP / RP / P, once with the l2-penalised neural network (subfigure a)
and once with gradient boosting (subfigure b).  The benchmark times one
gradient-boosting meta-classifier fit on time-series features; the series are
printed and written to ``benchmarks/artifacts/fig2.txt``.
"""

from __future__ import annotations

from _bench_common import write_artifact
from _bench_timedynamic import N_FRAMES_LIST, processed_sequences, protocol_result

from repro.core.meta_classification import MetaClassifier
from repro.timedynamic.compositions import COMPOSITIONS
from repro.timedynamic.time_series import build_time_series_dataset


def run() -> dict:
    """Return {method: {composition: {n_frames: (mean, std)}}} AUROC series."""
    result = protocol_result()
    series = {}
    for method in ("neural_network", "gradient_boosting"):
        series[method] = {
            composition: result.auroc_series(composition, method)
            for composition in COMPOSITIONS
        }
    return series


def test_benchmark_fig2(benchmark):
    """Time one time-series meta-classifier fit; print the Fig. 2 series."""
    pipeline, sequences = processed_sequences()
    dataset = build_time_series_dataset(sequences, n_previous=4, target="real")
    train, _val, test = dataset.split((0.7, 0.1, 0.2), random_state=0)

    def _fit_and_score():
        classifier = MetaClassifier(
            method="gradient_boosting", n_estimators=20, max_depth=3,
            max_features="sqrt", random_state=0,
        )
        classifier.fit(train)
        return classifier.predict_proba(test)

    benchmark(_fit_and_score)

    series = run()
    rows = ["Fig. 2 reproduction — AUROC vs number of considered frames", ""]
    panel_names = {
        "neural_network": "(a) neural network with l2-penalization",
        "gradient_boosting": "(b) gradient boosting",
    }
    for method, panel in panel_names.items():
        rows.append(panel)
        header = "  composition " + "".join(f"{n:>10d}" for n in N_FRAMES_LIST)
        rows.append(header)
        for composition, values in series[method].items():
            rendered = "".join(f"{100 * values[n][0]:10.2f}" for n in N_FRAMES_LIST)
            rows.append(f"  {composition:<12s}{rendered}")
        rows.append("")
    write_artifact("fig2", rows)

    # Shape check: real ground truth (R) should not be worse than pseudo-only
    # (P) for the best history length, for both model families.
    for method in panel_names:
        best_r = max(v[0] for v in series[method]["R"].values())
        best_p = max(v[0] for v in series[method]["P"].values())
        assert best_r >= best_p - 0.03
