"""Section II extension ([18]) — nested multi-resolution inference ablation.

The paper reports roughly +3 pp. for both meta tasks from (i) metrics derived
from a nested-crop inference ensemble and (ii) using neural networks as meta
models.  This ablation compares, on the same images:

* plain single-inference metrics + linear/logistic meta models,
* pyramid-ensemble metrics + linear/logistic meta models,
* pyramid-ensemble metrics + shallow neural-network meta models,

and reports AUROC (meta classification) and R² (meta regression) for each.
The benchmark times one pyramid-ensemble metric extraction.
"""

from __future__ import annotations

from _bench_common import BENCH_SCENE_CONFIG, scaled, write_artifact

from repro.core.meta_classification import MetaClassifier
from repro.core.meta_regression import MetaRegressor
from repro.core.multiresolution import MultiResolutionInference
from repro.core.pipeline import MetaSegPipeline
from repro.segmentation.datasets import CityscapesLikeDataset
from repro.segmentation.network import SimulatedSegmentationNetwork, mobilenetv2_profile

N_IMAGES = scaled(16)
N_RUNS = scaled(5, minimum=2)


def _evaluate(dataset, classifier_method, regressor_method, penalty, n_runs, seed):
    import numpy as np

    aurocs, r2s = [], []
    rng = np.random.default_rng(seed)
    for _ in range(n_runs):
        split_seed = int(rng.integers(0, 2**31 - 1))
        train, test = dataset.split((0.8, 0.2), random_state=split_seed)
        classifier = MetaClassifier(method=classifier_method, penalty=penalty, random_state=split_seed)
        aurocs.append(classifier.evaluate(train, test).test_auroc)
        regressor = MetaRegressor(method=regressor_method, penalty=penalty, random_state=split_seed)
        r2s.append(regressor.evaluate(train, test).test_r2)
    return float(np.mean(aurocs)), float(np.mean(r2s))


def run() -> dict:
    """Return AUROC / R² for the three configurations of the ablation."""
    dataset = CityscapesLikeDataset(
        n_train=0, n_val=N_IMAGES, scene_config=BENCH_SCENE_CONFIG, random_state=70
    )
    network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=71)
    pipeline = MetaSegPipeline(network)
    plain = pipeline.extract_dataset(dataset.val_samples())
    pyramid = MultiResolutionInference(network, crop_fractions=(1.0, 0.8, 0.6))
    extended = pyramid.extract_many(dataset.val_samples())

    output = {}
    output["plain + linear models"] = _evaluate(plain, "logistic", "linear", 1.0, N_RUNS, 72)
    output["pyramid + linear models"] = _evaluate(extended, "logistic", "linear", 1.0, N_RUNS, 72)
    output["pyramid + neural network"] = _evaluate(
        extended, "neural_network", "neural_network", 1e-3, max(2, N_RUNS // 2), 72
    )
    return output


def test_benchmark_multiresolution(benchmark):
    """Time one pyramid-ensemble extraction; print the ablation table."""
    dataset = CityscapesLikeDataset(
        n_train=0, n_val=2, scene_config=BENCH_SCENE_CONFIG, random_state=73
    )
    network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=74)
    pyramid = MultiResolutionInference(network, crop_fractions=(1.0, 0.8, 0.6))
    sample = dataset.val_sample(0)

    benchmark(pyramid.extract, sample.labels, 0, sample.image_id)

    output = run()
    rows = ["Multi-resolution (nested crop) ablation — Section II extension [18]", ""]
    for name, (auroc_value, r2_value) in output.items():
        rows.append(f"  {name:<28s} AUROC {100 * auroc_value:6.2f}%   R2 {100 * r2_value:6.2f}%")
    write_artifact("multiresolution", rows)

    # The ensemble metrics must not hurt the meta tasks.
    assert output["pyramid + linear models"][0] >= output["plain + linear models"][0] - 0.03
