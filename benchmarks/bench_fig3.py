"""Fig. 3 — qualitative comparison of Bayes and Maximum-Likelihood masks.

Decodes the softmax output of one image with the Bayes rule and with the
position-specific Maximum-Likelihood rule and writes both masks (plus the
ground truth) as PPM files.  The quantitative counterpart is the pixel
accuracy of the two masks and the number of predicted "human" segments — the
ML rule trades global accuracy for rare-class sensitivity.  The benchmark
times one ML decoding of a full softmax field.
"""

from __future__ import annotations

import numpy as np

from _bench_common import ARTIFACT_DIR, BENCH_SCENE_CONFIG, scaled, write_artifact

from repro.core.segments import extract_segments
from repro.core.visualization import labels_to_rgb, write_ppm
from repro.decision.pipeline import DecisionRuleComparison
from repro.evaluation.segmentation import pixel_accuracy
from repro.segmentation.datasets import CityscapesLikeDataset
from repro.segmentation.labels import cityscapes_label_space
from repro.segmentation.network import SimulatedSegmentationNetwork, mobilenetv2_profile

N_TRAIN = scaled(20)


def run() -> dict:
    """Write the Fig. 3 masks and return the per-rule summary numbers."""
    dataset = CityscapesLikeDataset(
        n_train=N_TRAIN, n_val=4, scene_config=BENCH_SCENE_CONFIG, random_state=40
    )
    network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=41)
    comparison = DecisionRuleComparison(network, category="human")
    comparison.fit_priors(dataset.train_samples())

    label_space = cityscapes_label_space()
    human_ids = set(label_space.ids_in_category("human"))
    sample = dataset.val_sample(0)
    probs = network.predict_probabilities(sample.labels, index=0)
    summary = {}
    write_ppm(ARTIFACT_DIR / "fig3_ground_truth.ppm", labels_to_rgb(sample.labels))
    for rule in ("bayes", "ml"):
        mask = comparison.decode(probs, rule)
        write_ppm(ARTIFACT_DIR / f"fig3_{rule}.ppm", labels_to_rgb(mask))
        segmentation = extract_segments(mask)
        n_human = sum(
            1 for info in segmentation.segments.values() if info.class_id in human_ids
        )
        summary[rule] = {
            "pixel_accuracy": pixel_accuracy(sample.labels, mask),
            "n_human_segments": n_human,
            "human_pixel_fraction": float(np.isin(mask, list(human_ids)).mean()),
        }
    return summary


def test_benchmark_fig3(benchmark):
    """Time one Maximum-Likelihood decoding; print the Fig. 3 summary."""
    dataset = CityscapesLikeDataset(
        n_train=scaled(10), n_val=1, scene_config=BENCH_SCENE_CONFIG, random_state=42
    )
    network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=43)
    comparison = DecisionRuleComparison(network, category="human")
    comparison.fit_priors(dataset.train_samples())
    probs = network.predict_probabilities(dataset.val_sample(0).labels, index=0)

    benchmark(comparison.decode, probs, "ml")

    summary = run()
    rows = ["Fig. 3 reproduction — Bayes vs Maximum Likelihood masks (PPM files)", ""]
    for rule, stats in summary.items():
        rows.append(
            f"  {rule:<6s} pixel accuracy {100 * stats['pixel_accuracy']:6.2f}%   "
            f"human segments {stats['n_human_segments']:4d}   "
            f"human pixel fraction {100 * stats['human_pixel_fraction']:5.2f}%"
        )
    rows.append(f"  masks: {ARTIFACT_DIR}/fig3_ground_truth.ppm, fig3_bayes.ppm, fig3_ml.ppm")
    write_artifact("fig3", rows)

    assert summary["bayes"]["pixel_accuracy"] >= summary["ml"]["pixel_accuracy"]
    assert summary["ml"]["human_pixel_fraction"] >= summary["bayes"]["human_pixel_fraction"]
