"""Benchmark — sparse contingency-table tracking vs per-segment masks.

Times the vectorised :func:`match_segments` against the retained
``_reference_match_segments`` per-segment-mask implementation on synthetic
video frame pairs with hundreds of moving segments, and a full
:class:`SegmentTracker` run over a short sequence against a tracker driven by
the reference matcher.  Bitwise parity (identical match dicts including
insertion order, identical track assignments and histories) is asserted on
every run; the acceptance gate of the perf issue — >= 5x at 512x1024 with
>= 100 segments per frame — is enforced by the exit code in full mode.

Invocation (segment decomposition is not part of the timed region):

    PYTHONPATH=src python benchmarks/bench_tracking.py           # full + gate
    PYTHONPATH=src python benchmarks/bench_tracking.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Tuple

import numpy as np

from _bench_common import write_artifact, write_bench_json, write_trajectory_json

from repro.core.segments import Segmentation, extract_segments
from repro.timedynamic.tracking import (
    SegmentTracker,
    _reference_match_segments,
    match_segments,
)

#: (name, height, width, cell) benchmark cases; the cell size keeps each frame
#: at roughly 300 segments (>= 100 required by the acceptance criterion).
FULL_CASES = (
    ("256x512", 256, 512, 16),
    ("512x1024", 512, 1024, 32),
)
SMOKE_CASES = (("128x256_smoke", 128, 256, 16),)

N_CLASSES = 8
N_TRACKER_FRAMES = 4


def make_frames(height: int, width: int, cell: int, n_frames: int, seed: int = 0) -> List[np.ndarray]:
    """Synthetic frame sequence: chunky segments under global motion + clutter."""
    rng = np.random.default_rng(seed)
    grid = rng.integers(0, N_CLASSES, size=(height // cell, width // cell))
    base = np.kron(grid, np.ones((cell, cell), dtype=np.int64)).astype(np.int64)
    frames = []
    for frame_index in range(n_frames):
        frame = np.roll(base, (frame_index * 3, -frame_index * 5), axis=(0, 1)).copy()
        for _ in range(8):
            r0 = int(rng.integers(0, height - cell))
            c0 = int(rng.integers(0, width - cell))
            frame[r0:r0 + cell // 2, c0:c0 + cell // 2] = int(rng.integers(0, N_CLASSES))
        frames.append(frame)
    return frames


def make_shifts(segmentation: Segmentation, seed: int = 1) -> Dict[int, Tuple[float, float]]:
    """Expected-displacement dict mixing zero, float and half-integer shifts."""
    rng = np.random.default_rng(seed)
    shifts: Dict[int, Tuple[float, float]] = {}
    for segment_id in segmentation.segment_ids():
        u = rng.uniform()
        if u < 0.3:
            continue
        if u < 0.5:
            shifts[segment_id] = (3.0, -5.0)
        elif u < 0.7:
            shifts[segment_id] = (float(rng.uniform(-4.0, 4.0)), float(rng.uniform(-7.0, 7.0)))
        else:
            shifts[segment_id] = (2.5, -4.5)
    return shifts


def _fresh(frame: np.ndarray) -> Segmentation:
    """New Segmentation per timed call so cached pixel groups cannot help."""
    return extract_segments(frame)


def _time_best_fresh(match_fn, frame, current, shifts, repeats: int) -> float:
    """Best-of timing with one pre-extracted Segmentation per repeat.

    The decomposition stays outside the timed region, but every call gets a
    fresh instance so the fast path's cached pixel groups cannot carry over
    between repeats (in production each frame is ``previous`` exactly once).
    """
    fresh = [extract_segments(frame) for _ in range(repeats)]
    best = float("inf")
    for segmentation in fresh:
        start = time.perf_counter()
        match_fn(segmentation, current, shifts)
        best = min(best, time.perf_counter() - start)
    return best


def run_case(
    name: str, height: int, width: int, cell: int, reference_repeats: int, fast_repeats: int
) -> Dict[str, object]:
    """Time and parity-check one synthetic case."""
    frames = make_frames(height, width, cell, N_TRACKER_FRAMES)
    previous = extract_segments(frames[0])
    current = extract_segments(frames[1])
    shifts = make_shifts(previous)

    # Bitwise parity of the pairwise matcher (values and insertion order).
    fast_matches = match_segments(previous, current, shifts)
    reference_matches = _reference_match_segments(previous, current, shifts)
    if fast_matches != reference_matches or list(fast_matches) != list(reference_matches):
        raise AssertionError(f"{name}: match dicts diverge from the reference")

    # Bitwise parity of full tracker runs (assignments and histories).
    fast_tracker = SegmentTracker()
    reference_tracker = SegmentTracker(match_fn=_reference_match_segments)
    for frame in frames:
        fast_assignment = fast_tracker.update(_fresh(frame))
        reference_assignment = reference_tracker.update(_fresh(frame))
        if fast_assignment != reference_assignment:
            raise AssertionError(f"{name}: track assignments diverge from the reference")
    for track_id, track in fast_tracker.tracks.items():
        if track.segment_history != reference_tracker.tracks[track_id].segment_history:
            raise AssertionError(f"{name}: track histories diverge from the reference")

    reference_seconds = _time_best_fresh(
        _reference_match_segments, frames[0], current, shifts, reference_repeats
    )
    fast_seconds = _time_best_fresh(
        match_segments, frames[0], current, shifts, fast_repeats
    )
    return {
        "case": name,
        "height": height,
        "width": width,
        "n_prev_segments": previous.n_segments,
        "n_curr_segments": current.n_segments,
        "n_matches": len(fast_matches),
        "reference_seconds": reference_seconds,
        "vectorized_seconds": fast_seconds,
        "speedup": reference_seconds / fast_seconds if fast_seconds > 0 else float("inf"),
    }


def run(smoke: bool = False) -> dict:
    """Run all cases and write the artifacts."""
    cases = SMOKE_CASES if smoke else FULL_CASES
    reference_repeats = 1 if smoke else 2
    fast_repeats = 3 if smoke else 5
    results: List[Dict[str, object]] = [
        run_case(name, height, width, cell, reference_repeats, fast_repeats)
        for name, height, width, cell in cases
    ]
    rows = ["segment tracking: per-segment-mask reference vs sparse contingency fast path"]
    for result in results:
        rows.append(
            f"  {result['case']:<14s} segments {result['n_prev_segments']:4d}/"
            f"{result['n_curr_segments']:<4d} matches {result['n_matches']:4d}  "
            f"reference {result['reference_seconds'] * 1e3:9.1f} ms  "
            f"vectorized {result['vectorized_seconds'] * 1e3:7.1f} ms  "
            f"speedup {result['speedup']:6.1f}x"
        )
    write_artifact("tracking", rows)
    payload = {"mode": "smoke" if smoke else "full", "cases": results}
    write_bench_json("tracking", payload)
    if not smoke:
        write_trajectory_json("tracking", payload)
    return payload


def test_tracking_speedup():
    """Smoke-mode pytest entry: the fast path must beat the reference."""
    payload = run(smoke=True)
    for result in payload["cases"]:
        assert result["n_prev_segments"] >= 50
        assert result["speedup"] > 1.0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small single case for CI (full mode runs 256x512 and 512x1024)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    # Smoke runs (CI) gate parity (asserted inside run) plus a sanity
    # speedup; full runs enforce the acceptance criterion of the perf issue:
    # >= 5x at 512x1024 with >= 100 segments/frame.
    min_segments, min_speedup = (50, 1.0) if args.smoke else (100, 5.0)
    big = payload["cases"][-1]
    if big["n_prev_segments"] < min_segments:
        print(f"WARNING: only {big['n_prev_segments']} segments generated", file=sys.stderr)
        return 1
    if big["speedup"] < min_speedup:
        print(
            f"WARNING: speedup {big['speedup']:.1f}x below the {min_speedup:.0f}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
