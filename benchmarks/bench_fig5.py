"""Fig. 5 — empirical CDFs of segment-wise precision and recall, Bayes vs ML.

Regenerates the Fig. 5 comparison for both network profiles: the empirical
CDFs of segment-wise precision and recall of the category "human" under the
Bayes and Maximum-Likelihood decision rules, the first-order stochastic
dominance statements (F^p_ML ≺ F^p_B, and the reverse for recall), and the
non-detection rates F^r(0).  An additional cost-sweep ablation interpolates
between the two rules (prior exponent 0, 0.5, 1) to show the precision/recall
trade-off the paper discusses for general cost-based rules.

The benchmark times the per-image precision/recall collection step.
"""

from __future__ import annotations

from _bench_common import BENCH_SCENE_CONFIG, scaled, write_artifact

from repro.decision.evaluation import collect_precision_recall, precision_dominance, recall_dominance
from repro.decision.pipeline import DecisionRuleComparison
from repro.segmentation.datasets import CityscapesLikeDataset
from repro.segmentation.network import (
    SimulatedSegmentationNetwork,
    mobilenetv2_profile,
    xception65_profile,
)

N_TRAIN = scaled(24)
N_VAL = scaled(16)
CDF_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)


def run() -> dict:
    """Return the Fig. 5 quantities for both network profiles."""
    output = {}
    dataset = CityscapesLikeDataset(
        n_train=N_TRAIN, n_val=N_VAL, scene_config=BENCH_SCENE_CONFIG, random_state=60
    )
    for profile in (mobilenetv2_profile(), xception65_profile()):
        network = SimulatedSegmentationNetwork(profile, random_state=61)
        comparison = DecisionRuleComparison(network, category="human")
        comparison.fit_priors(dataset.train_samples())
        result = comparison.compare(dataset.val_samples(), rules=("bayes", "ml"))
        sweep = comparison.compare(
            dataset.val_samples()[: max(4, N_VAL // 2)],
            rules=("bayes", "interpolated", "ml"),
            strengths={"interpolated": 0.5},
        )
        output[profile.name] = {"result": result, "sweep": sweep}
    return output


def test_benchmark_fig5(benchmark):
    """Time one precision/recall collection; print the Fig. 5 summary."""
    dataset = CityscapesLikeDataset(
        n_train=scaled(6), n_val=2, scene_config=BENCH_SCENE_CONFIG, random_state=62
    )
    network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=63)
    sample = dataset.val_sample(0)
    prediction = network.predict_labels(sample.labels, index=0)

    benchmark(collect_precision_recall, prediction, sample.labels, "human")

    output = run()
    rows = ["Fig. 5 reproduction — segment-wise precision/recall CDFs, Bayes vs ML", ""]
    for name, data in output.items():
        result = data["result"]
        bayes = result.per_rule["bayes"]
        ml = result.per_rule["ml"]
        rows.append(f"{name}:")
        rows.append("  precision CDF F^p(t)        t=" + "  ".join(f"{t:>5.2f}" for t in CDF_GRID))
        rows.append("    Bayes                      " + "  ".join(f"{bayes.precision_cdf()(t):5.2f}" for t in CDF_GRID))
        rows.append("    ML                         " + "  ".join(f"{ml.precision_cdf()(t):5.2f}" for t in CDF_GRID))
        rows.append("  recall CDF F^r(t)           t=" + "  ".join(f"{t:>5.2f}" for t in CDF_GRID))
        rows.append("    Bayes                      " + "  ".join(f"{bayes.recall_cdf()(t):5.2f}" for t in CDF_GRID))
        rows.append("    ML                         " + "  ".join(f"{ml.recall_cdf()(t):5.2f}" for t in CDF_GRID))
        rows.append(
            f"  F^p_ML < F^p_B (Bayes precision dominates): {precision_dominance(bayes, ml)}"
        )
        rows.append(
            f"  F^r_B < F^r_ML (ML recall dominates):       {recall_dominance(bayes, ml)}"
        )
        rows.append(
            f"  non-detection F^r(0):  Bayes {bayes.non_detection_rate():.3f}   "
            f"ML {ml.non_detection_rate():.3f}"
        )
        sweep = data["sweep"]
        rows.append("  cost-sweep ablation (prior exponent 0 / 0.5 / 1):")
        for rule in ("bayes", "interpolated", "ml"):
            stats = sweep.per_rule[rule]
            rows.append(
                f"    {rule:<13s} mean precision {stats.mean_precision():5.3f}   "
                f"mean recall {stats.mean_recall():5.3f}   "
                f"F^r(0) {stats.non_detection_rate():5.3f}"
            )
        rows.append("")
    write_artifact("fig5", rows)

    for name, data in output.items():
        result = data["result"]
        bayes = result.per_rule["bayes"]
        ml = result.per_rule["ml"]
        # Headline claims of Section IV.
        assert ml.non_detection_rate() <= bayes.non_detection_rate(), name
        assert bayes.mean_precision() >= ml.mean_precision(), name
