"""Benchmark — cold vs. warm sweeps through the content-addressed store.

Runs the ISSUE's headline scenario: a 4-point sweep of a metaseg experiment
where **only the meta-model varies**, executed on the ``process`` backend so
per-shard caching engages.  Three phases over the same grid:

* ``nocache`` — caching disabled (every point recomputes everything);
* ``cold``    — fresh store: point 0 computes and publishes the extraction
  shards, points 1-3 reuse them (only the protocol re-runs);
* ``warm``    — second run against the same store: every point is served
  from the whole-report cache (no pipeline code runs at all).

Two gates, enforced by the exit code (and the pytest entry):

* **speedup** — the warm sweep must be >= 5x faster than the cold sweep;
* **parity**  — every cached report must be bitwise identical
  (``to_json``) to its uncached counterpart, and every non-first cold
  point must have reused all of its extraction shards.

Results are written to ``benchmarks/artifacts/BENCH_sweep_cache.json``.

Invocation:

    PYTHONPATH=src:benchmarks python benchmarks/bench_sweep_cache.py          # full
    PYTHONPATH=src:benchmarks python benchmarks/bench_sweep_cache.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from typing import Dict, List

from _bench_common import scaled, write_artifact, write_bench_json

from repro.store import ResultStore
from repro.sweep import SweepConfig, run_sweep

#: The warm (fully cached) sweep must beat the cold sweep by this factor.
MIN_WARM_SPEEDUP = 5.0

#: Process-shard count; explicit so shard caching engages even on 1-CPU CI
#: machines (the process backend falls back to serial for a single worker).
WORKERS = 2

#: The four meta-model variants of the sweep (the only field that varies).
META_MODEL_GRID = [
    ["logistic"],
    ["gradient_boosting"],
    ["neural_network"],
    ["logistic", "gradient_boosting"],
]


def make_sweep(smoke: bool) -> SweepConfig:
    n_val = 4 if smoke else scaled(8)
    height, width = (48, 96) if smoke else (96, 192)
    base = {
        "kind": "metaseg",
        "name": "sweep-cache-bench",
        "seed": 0,
        "data": {"dataset": "cityscapes_like", "n_val": n_val,
                 "height": height, "width": width},
        "execution": {"backend": "process", "workers": WORKERS},
        "meta_models": {
            "model_params": {"gradient_boosting": {"n_estimators": 10, "max_depth": 2},
                             "neural_network": {"n_epochs": 40,
                                                "hidden_layer_sizes": [16]}},
        },
        "evaluation": {"n_runs": 2 if smoke else 5},
    }
    return SweepConfig.from_dict({
        "name": "meta-model-sweep",
        "base": base,
        "grid": {"meta_models.classifiers": META_MODEL_GRID},
    })


def _timed_sweep(sweep: SweepConfig, store, no_cache: bool = False):
    start = time.perf_counter()
    result = run_sweep(sweep, store=store, no_cache=no_cache)
    return result, time.perf_counter() - start


def run(smoke: bool = False) -> dict:
    """Run the three phases, verify the gates and write the artifacts."""
    sweep = make_sweep(smoke)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
        store = ResultStore(root)
        nocache_result, nocache_seconds = _timed_sweep(sweep, None, no_cache=True)
        cold_result, cold_seconds = _timed_sweep(sweep, store)
        warm_result, warm_seconds = _timed_sweep(sweep, store)
        store_stats = store.stats()

    # Parity gate: cached payloads are bitwise identical to uncached ones.
    for fresh, cold, warm in zip(
        nocache_result.points, cold_result.points, warm_result.points
    ):
        assert cold.report.to_json() == fresh.report.to_json(), fresh.point.label
        assert warm.report.to_json() == fresh.report.to_json(), fresh.point.label

    # Shard-reuse gate: within the cold sweep, every point after the first
    # serves all of its extraction shards from the store.
    assert cold_result.points[0].shard_cache["misses"] > 0
    reused: List[Dict[str, int]] = [
        point.shard_cache for point in cold_result.points[1:]
    ]
    assert all(counts.get("misses", 1) == 0 for counts in reused), reused
    assert all(counts.get("hits", 0) > 0 for counts in reused), reused
    assert warm_result.cache_hits == len(warm_result.points)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    config = sweep.base
    payload = {
        "mode": "smoke" if smoke else "full",
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "cases": [
            {
                "case": "metaseg_meta_model_sweep",
                "n_points": len(META_MODEL_GRID),
                "workers": WORKERS,
                "n_val": config["data"]["n_val"],
                "height": config["data"]["height"],
                "width": config["data"]["width"],
                "n_runs": config["evaluation"]["n_runs"],
                "nocache_seconds": nocache_seconds,
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "warm_speedup": speedup,
                "cold_shard_reuse": [
                    dict(point.shard_cache) for point in cold_result.points
                ],
                "store_entries": store_stats["n_entries"],
                "store_payload_bytes": store_stats["payload_bytes"],
                "parity": "bitwise (cached == fresh, all points)",
            }
        ],
    }
    rows = [
        f"Sweep result caching ({len(META_MODEL_GRID)} meta-model points, "
        f"process backend @ {WORKERS} workers)",
        "  parity   cached reports bitwise-equal to uncached: OK",
        "  shards   cold points 1..n reuse every extraction shard: OK",
        f"  nocache  {nocache_seconds * 1e3:9.1f} ms",
        f"  cold     {cold_seconds * 1e3:9.1f} ms",
        f"  warm     {warm_seconds * 1e3:9.1f} ms",
        f"  speedup  {speedup:7.1f}x warm-over-cold  (gate: >= {MIN_WARM_SPEEDUP:.0f}x)",
    ]
    write_artifact("sweep_cache", rows)
    write_bench_json("sweep_cache", payload)
    return payload


def test_sweep_cache():
    """Smoke-mode pytest entry: parity holds and warm beats cold >= 5x."""
    payload = run(smoke=True)
    assert payload["cases"][0]["warm_speedup"] >= MIN_WARM_SPEEDUP


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload for CI (full mode uses the scaled workload)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)  # parity asserts are the hard gate
    speedup = payload["cases"][0]["warm_speedup"]
    if speedup < MIN_WARM_SPEEDUP:
        print(
            f"FAIL: warm sweep speedup {speedup:.2f}x below the "
            f"{MIN_WARM_SPEEDUP:.0f}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
