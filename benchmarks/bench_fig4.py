"""Fig. 4 — estimated pixel-wise prior probabilities of the class "human".

Estimates the position-specific priors on the training split, writes the
"human" heatmap as a PPM file (green intensity ∝ prior) and prints its row
profile, verifying the property shown in Fig. 4: the prior mass concentrates
in the lower half of the image (sidewalk region) and vanishes in the sky.
The benchmark times the prior estimation itself.
"""

from __future__ import annotations

import numpy as np

from _bench_common import ARTIFACT_DIR, BENCH_SCENE_CONFIG, scaled, write_artifact

from repro.decision.priors import PixelPriorEstimator
from repro.segmentation.datasets import CityscapesLikeDataset

N_TRAIN = scaled(30)


def run() -> dict:
    """Estimate the priors and write the Fig. 4 heatmap."""
    dataset = CityscapesLikeDataset(
        n_train=N_TRAIN, n_val=1, scene_config=BENCH_SCENE_CONFIG, random_state=50
    )
    estimator = PixelPriorEstimator().fit(s.labels for s in dataset.train_samples())
    heatmap = estimator.category_prior("human")
    normalised = heatmap / heatmap.max() if heatmap.max() > 0 else heatmap
    rgb = np.zeros((*heatmap.shape, 3), dtype=np.uint8)
    rgb[..., 1] = np.round(255 * normalised).astype(np.uint8)
    from repro.core.visualization import write_ppm

    write_ppm(ARTIFACT_DIR / "fig4_human_prior.ppm", rgb)
    height = heatmap.shape[0]
    return {
        "heatmap": heatmap,
        "upper_third_mean": float(heatmap[: height // 3].mean()),
        "lower_half_mean": float(heatmap[height // 2 :].mean()),
        "max_prior": float(heatmap.max()),
        "global_frequency": float(estimator.global_class_frequencies()[11]
                                  + estimator.global_class_frequencies()[12]),
    }


def test_benchmark_fig4(benchmark):
    """Time the prior estimation; print the Fig. 4 summary."""
    dataset = CityscapesLikeDataset(
        n_train=scaled(10), n_val=1, scene_config=BENCH_SCENE_CONFIG, random_state=51
    )
    labels = [s.labels for s in dataset.train_samples()]

    def _estimate():
        return PixelPriorEstimator().fit(labels).priors()

    benchmark(_estimate)

    info = run()
    rows = [
        "Fig. 4 reproduction — pixel-wise prior of the category 'human'",
        "",
        f"  images used for estimation: {N_TRAIN}",
        f"  global 'human' pixel frequency: {100 * info['global_frequency']:.3f}%",
        f"  mean prior, upper third of the image:  {info['upper_third_mean']:.4f}",
        f"  mean prior, lower half of the image:   {info['lower_half_mean']:.4f}",
        f"  maximal pixel-wise prior:              {info['max_prior']:.4f}",
        f"  heatmap: {ARTIFACT_DIR}/fig4_human_prior.ppm",
    ]
    write_artifact("fig4", rows)

    # The Fig. 4 property: humans are concentrated below the horizon.
    assert info["lower_half_mean"] > info["upper_third_mean"]
    assert info["max_prior"] > 3 * info["global_frequency"]
