"""Benchmark — online scoring service latency and throughput.

Fits the serving meta-model once on the committed disk fixture
(``tests/fixtures/disk``), starts an in-process :class:`ScoringServer`, and
measures end-to-end HTTP request latency (parse + extract + score + respond)
for single-frame npy requests, plus sustained throughput under concurrent
clients.  Bitwise parity of every server response against the batch
``Runner.score`` reference is asserted before anything is timed — a fast but
wrong server scores zero.

Gates (full mode, enforced by the exit code): p50 latency < 1 s, p99 < 5 s,
concurrent throughput > 1 frame/s on the 32x64x19 fixture frames.

Invocation:

    PYTHONPATH=src python benchmarks/bench_serve.py           # full + gate
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from _bench_common import write_artifact, write_bench_json, write_trajectory_json

from repro.api.config import ExperimentConfig
from repro.api.runner import Runner
from repro.serve import ScoringServer, ScoringService, score_frame, wait_until_ready

FIXTURE_ROOT = Path(__file__).resolve().parent.parent / "tests" / "fixtures" / "disk"

#: Latency/throughput gates (generous: correctness is gated bitwise, these
#: only catch pathological regressions like a cold extractor per request).
GATE_P50_SECONDS = 1.0
GATE_P99_SECONDS = 5.0
GATE_FRAMES_PER_SECOND = 1.0


def fixture_config() -> dict:
    return {
        "kind": "metaseg",
        "name": "bench-serve",
        "seed": 7,
        "data": {"dataset": "cityscapes_disk", "root": str(FIXTURE_ROOT)},
        "network": {
            "profile": "softmax_dump",
            "dump_root": str(FIXTURE_ROOT / "softmax"),
            "mmap": True,
        },
        "meta_models": {"classifiers": ["logistic"], "regressors": ["linear"]},
        "evaluation": {"n_runs": 2, "train_fraction": 0.8},
    }


def load_frames(runner: Runner) -> List[Tuple[str, np.ndarray]]:
    """The fixture's validation softmax fields as (image_id, probs) pairs."""
    config = ExperimentConfig.from_dict(fixture_config())
    config.validate()
    resolved = runner.resolve(config)
    frames = []
    for index, sample in enumerate(resolved.dataset.val_samples()):
        probs = resolved.network.predict_probabilities(sample.labels, index=index)
        frames.append((sample.image_id, np.array(probs)))
    return frames


def percentile_nearest_rank(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile on an ascending-sorted list."""
    rank = max(1, int(np.ceil(q / 100.0 * len(sorted_values))))
    return sorted_values[rank - 1]


def assert_parity(
    url: str, frames: List[Tuple[str, np.ndarray]], reference: Dict[str, object]
) -> None:
    for (image_id, probs), expected in zip(frames, reference["frames"]):
        scored = score_frame(url, probs, image_id=image_id)
        if json.dumps(scored, sort_keys=True) != json.dumps(expected, sort_keys=True):
            raise AssertionError(
                f"server response for {image_id!r} diverges from Runner.score"
            )


def sequential_latency(
    url: str, frames: List[Tuple[str, np.ndarray]], n_requests: int, warmup: int
) -> List[float]:
    """Per-request wall seconds, cycling through the fixture frames."""
    for i in range(warmup):
        image_id, probs = frames[i % len(frames)]
        score_frame(url, probs, image_id=image_id)
    latencies = []
    for i in range(n_requests):
        image_id, probs = frames[i % len(frames)]
        start = time.perf_counter()
        score_frame(url, probs, image_id=image_id)
        latencies.append(time.perf_counter() - start)
    return latencies


def concurrent_throughput(
    url: str, frames: List[Tuple[str, np.ndarray]], n_clients: int, per_client: int
) -> float:
    """Frames/second with ``n_clients`` threads posting concurrently."""
    errors: List[Exception] = []

    def client(slot: int) -> None:
        try:
            for i in range(per_client):
                image_id, probs = frames[(slot + i) % len(frames)]
                score_frame(url, probs, image_id=image_id)
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise AssertionError(f"concurrent client failed: {errors[0]}")
    return (n_clients * per_client) / elapsed


def run(smoke: bool = False) -> dict:
    runner = Runner()
    fit_start = time.perf_counter()
    model = runner.fit(fixture_config())
    fit_seconds = time.perf_counter() - fit_start
    reference = runner.score(fixture_config(), model=model)
    frames = load_frames(runner)

    n_requests = 20 if smoke else 200
    warmup = 2 if smoke else 5
    n_clients = 2 if smoke else 4
    per_client = 10 if smoke else 50

    server = ScoringServer(ScoringService(model), port=0, workers=4, queue_depth=32)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        wait_until_ready(server.url)
        assert_parity(server.url, frames, reference)
        latencies = sorted(
            sequential_latency(server.url, frames, n_requests, warmup)
        )
        fps = concurrent_throughput(server.url, frames, n_clients, per_client)
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=5)

    height, width, n_classes = frames[0][1].shape
    result = {
        "case": f"{height}x{width}x{n_classes}",
        "n_frames": len(frames),
        "fit_seconds": fit_seconds,
        "n_requests": n_requests,
        "p50_seconds": percentile_nearest_rank(latencies, 50),
        "p99_seconds": percentile_nearest_rank(latencies, 99),
        "mean_seconds": float(np.mean(latencies)),
        "n_clients": n_clients,
        "requests_per_client": per_client,
        "frames_per_second": fps,
        "parity": "bitwise",
    }
    rows = [
        "online scoring service: end-to-end HTTP latency on the disk fixture",
        f"  {result['case']:<12s} fit once {fit_seconds * 1e3:8.1f} ms   "
        f"p50 {result['p50_seconds'] * 1e3:7.2f} ms  "
        f"p99 {result['p99_seconds'] * 1e3:7.2f} ms  "
        f"({n_requests} sequential requests)",
        f"  {'':<12s} {n_clients} clients x {per_client} frames  "
        f"throughput {fps:8.1f} frames/s   parity: bitwise vs Runner.score",
    ]
    write_artifact("serve", rows)
    payload = {"mode": "smoke" if smoke else "full", "cases": [result]}
    write_bench_json("serve", payload)
    if not smoke:
        write_trajectory_json("serve", payload)
    return payload


def test_serve_latency():
    """Smoke-mode pytest entry: parity plus the (generous) latency gates."""
    payload = run(smoke=True)
    (result,) = payload["cases"]
    assert result["p50_seconds"] < GATE_P50_SECONDS
    assert result["p99_seconds"] < GATE_P99_SECONDS
    assert result["frames_per_second"] > GATE_FRAMES_PER_SECOND


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer requests/clients for CI (same parity and latency gates)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    (result,) = payload["cases"]
    failed = False
    if result["p50_seconds"] >= GATE_P50_SECONDS:
        print(
            f"WARNING: p50 {result['p50_seconds']:.3f}s over the "
            f"{GATE_P50_SECONDS:.1f}s gate",
            file=sys.stderr,
        )
        failed = True
    if result["p99_seconds"] >= GATE_P99_SECONDS:
        print(
            f"WARNING: p99 {result['p99_seconds']:.3f}s over the "
            f"{GATE_P99_SECONDS:.1f}s gate",
            file=sys.stderr,
        )
        failed = True
    if result["frames_per_second"] <= GATE_FRAMES_PER_SECOND:
        print(
            f"WARNING: throughput {result['frames_per_second']:.1f} frames/s "
            f"under the {GATE_FRAMES_PER_SECOND:.0f}/s gate",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
