"""Table II — best meta classification / regression per training composition.

Regenerates the Table II structure: for every composition (R / RA / RAP / RP /
P) and both model families (gradient boosting, l2-penalised neural network)
the best ACC/AUROC (meta classification) and σ/R² (meta regression) over the
number of considered frames, with the superscript indicating at which history
length the optimum is reached.  Also prints the single-frame linear-model
reference and the improvement of the time-dynamic approach over it (the paper
quotes +5.04 pp. AUROC and +5.63 pp. R²).
"""

from __future__ import annotations

from _bench_common import write_artifact
from _bench_timedynamic import N_RUNS, processed_sequences, protocol_result

from repro.timedynamic.compositions import COMPOSITIONS


def run() -> dict:
    """Return the Table II rows plus the single-frame linear reference."""
    pipeline, sequences = processed_sequences()
    result = protocol_result()
    reference = pipeline.single_frame_linear_reference(sequences, n_runs=N_RUNS, random_state=30)
    table = {}
    for composition in COMPOSITIONS:
        table[composition] = {}
        for method in ("gradient_boosting", "neural_network"):
            table[composition][method] = {
                "classification": result.best_classification(composition, method),
                "regression": result.best_regression(composition, method),
            }
    return {"table": table, "reference": reference}


def test_benchmark_table2(benchmark):
    """Time the single-frame linear reference; print the Table II layout."""
    pipeline, sequences = processed_sequences()

    benchmark.pedantic(
        pipeline.single_frame_linear_reference,
        kwargs={"sequences": sequences, "n_runs": 1, "random_state": 31},
        rounds=1,
        iterations=1,
    )

    output = run()
    table = output["table"]
    reference = output["reference"]
    rows = ["Table II reproduction — best value over #frames (superscript = frames)", ""]
    rows.append("Meta Classification IoU = 0, > 0")
    rows.append(f"  {'':<5s}{'Gradient Boosting':>38s}{'Neural Network (l2)':>38s}")
    for composition in COMPOSITIONS:
        cells = []
        for method in ("gradient_boosting", "neural_network"):
            best = table[composition][method]["classification"]
            cells.append(
                f"ACC {100 * best['accuracy'][0]:6.2f}%  "
                f"AUROC {100 * best['auroc'][0]:6.2f}%^{best['n_frames']}"
            )
        rows.append(f"  {composition:<5s}{cells[0]:>38s}{cells[1]:>38s}")
    rows.append("")
    rows.append("Meta Regression IoU")
    rows.append(f"  {'':<5s}{'Gradient Boosting':>38s}{'Neural Network (l2)':>38s}")
    for composition in COMPOSITIONS:
        cells = []
        for method in ("gradient_boosting", "neural_network"):
            best = table[composition][method]["regression"]
            cells.append(
                f"sigma {best['sigma'][0]:5.3f}  R2 {100 * best['r2'][0]:6.2f}%^{best['n_frames']}"
            )
        rows.append(f"  {composition:<5s}{cells[0]:>38s}{cells[1]:>38s}")
    rows.append("")
    best_gb_cls = table["R"]["gradient_boosting"]["classification"]
    best_gb_reg = table["R"]["gradient_boosting"]["regression"]
    rows.append("Single-frame linear reference vs time-dynamic gradient boosting (R):")
    rows.append(
        f"  AUROC {100 * reference['auroc'][0]:6.2f}%  ->  {100 * best_gb_cls['auroc'][0]:6.2f}%  "
        f"(delta {100 * (best_gb_cls['auroc'][0] - reference['auroc'][0]):+.2f} pp, paper: +5.04 pp)"
    )
    rows.append(
        f"  R2    {100 * reference['r2'][0]:6.2f}%  ->  {100 * best_gb_reg['r2'][0]:6.2f}%  "
        f"(delta {100 * (best_gb_reg['r2'][0] - reference['r2'][0]):+.2f} pp, paper: +5.63 pp)"
    )
    write_artifact("table2", rows)

    # Shape checks: every composition trains successfully and real ground
    # truth is competitive with pseudo-only training.
    for composition in COMPOSITIONS:
        assert table[composition]["gradient_boosting"]["classification"]["auroc"][0] > 0.6
    assert (
        table["R"]["gradient_boosting"]["classification"]["auroc"][0]
        >= table["P"]["gradient_boosting"]["classification"]["auroc"][0] - 0.05
    )
