"""Benchmark — Runner dispatch overhead over the direct MetaSeg pipeline.

The unified ``repro.api.runner.Runner`` resolves a declarative config through
the registries, builds the substrate/network/pipeline and then executes the
exact same extraction + Table-I-protocol code the direct
``MetaSegPipeline.run_table1_protocol`` path runs.  This bench times both
paths end to end on the same workload, asserts the results agree bitwise, and
gates the wall-clock overhead of the API layer at < 5 %.

Results are written to ``benchmarks/artifacts/BENCH_runner_overhead.json``.

Invocation:

    PYTHONPATH=src:benchmarks python benchmarks/bench_runner_overhead.py          # full
    PYTHONPATH=src:benchmarks python benchmarks/bench_runner_overhead.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from _bench_common import (
    gated_overhead,
    scaled,
    write_artifact,
    write_bench_json,
)

from repro.api.config import DataConfig, EvalConfig, ExperimentConfig
from repro.api.runner import Runner, derived_seeds
from repro.core.pipeline import MetaSegPipeline, MetaSegResult
from repro.segmentation.datasets import CityscapesLikeDataset
from repro.segmentation.network import SimulatedSegmentationNetwork, mobilenetv2_profile
from repro.segmentation.scene import SceneConfig

#: Allowed Runner overhead over the direct pipeline path.
MAX_OVERHEAD_FRACTION = 0.05


def make_config(smoke: bool) -> ExperimentConfig:
    n_val = 4 if smoke else scaled(12)
    height, width = (64, 128) if smoke else (96, 192)
    return ExperimentConfig(
        kind="metaseg",
        name="runner-overhead",
        seed=0,
        data=DataConfig(dataset="cityscapes_like", n_val=n_val, height=height, width=width),
        evaluation=EvalConfig(n_runs=2 if smoke else 5),
    )


def run_direct(config: ExperimentConfig) -> MetaSegResult:
    """The equivalent hand-wired pipeline call (same derived seeds)."""
    seeds = derived_seeds(config.seed)
    dataset = CityscapesLikeDataset(
        n_train=config.data.n_train,
        n_val=config.data.n_val,
        scene_config=SceneConfig(height=config.data.height, width=config.data.width),
        random_state=seeds.data,
    )
    network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=seeds.network)
    pipeline = MetaSegPipeline(network)
    metrics = pipeline.extract_dataset_batched(dataset.val_samples())
    return pipeline.run_table1_protocol(
        metrics,
        n_runs=config.evaluation.n_runs,
        train_fraction=config.evaluation.train_fraction,
        random_state=seeds.protocol,
    )


def check_parity(config: ExperimentConfig) -> None:
    """Runner numbers must equal the direct pipeline numbers bitwise."""
    report = Runner().run(config)
    direct = run_direct(config)
    for row in report.table("classification"):
        if row["variant"] == "naive":
            assert row["mean"] == direct.naive_accuracy
            continue
        mean, std = direct.classification[row["variant"]][row["metric"]]
        assert (row["mean"], row["std"]) == (mean, std), row
    for row in report.table("regression"):
        mean, std = direct.regression[row["variant"]][row["metric"]]
        assert (row["mean"], row["std"]) == (mean, std), row


def run(smoke: bool = False) -> dict:
    """Time both paths, verify parity and write the artifacts."""
    config = make_config(smoke)
    # The gate is tight (< 5 %), so the overhead is estimated over rotated
    # interleaved repeats with retry-on-breach (_bench_common.gated_overhead)
    # — robust to multi-second load spikes on a busy CI box.
    repeats = 9 if smoke else 11
    # Warm-up both paths once (registry loading, numpy caches) before timing.
    check_parity(config)
    runner = Runner()
    (runner_times, direct_times), overhead = gated_overhead(
        [lambda: runner.run(config), lambda: run_direct(config)],
        repeats,
        MAX_OVERHEAD_FRACTION,
        candidate_index=0,
        baseline_index=1,
    )
    runner_seconds, direct_seconds = min(runner_times), min(direct_times)
    payload = {
        "mode": "smoke" if smoke else "full",
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "cases": [
            {
                "case": "metaseg_table1",
                "n_val": config.data.n_val,
                "height": config.data.height,
                "width": config.data.width,
                "n_runs": config.evaluation.n_runs,
                "repeats": repeats,
                "direct_seconds": direct_seconds,
                "runner_seconds": runner_seconds,
                "overhead_fraction": overhead,
            }
        ],
    }
    rows = [
        "Runner dispatch overhead over the direct MetaSegPipeline path",
        f"  direct  {direct_seconds * 1e3:8.1f} ms",
        f"  runner  {runner_seconds * 1e3:8.1f} ms",
        f"  overhead {100 * overhead:+6.2f}%  "
        f"(noise-robust ratio; gate: < {100 * MAX_OVERHEAD_FRACTION:.0f}%)",
    ]
    write_artifact("runner_overhead", rows)
    write_bench_json("runner_overhead", payload)
    return payload


def test_runner_overhead():
    """Smoke-mode pytest entry: parity holds and overhead stays below the gate."""
    payload = run(smoke=True)
    assert payload["cases"][0]["overhead_fraction"] < MAX_OVERHEAD_FRACTION


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small single case for CI (full mode uses the scaled workload)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    overhead = payload["cases"][0]["overhead_fraction"]
    if overhead >= MAX_OVERHEAD_FRACTION:
        print(
            f"WARNING: Runner overhead {100 * overhead:.2f}% exceeds the "
            f"{100 * MAX_OVERHEAD_FRACTION:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
