"""Benchmark — distributed dispatch-queue Runner backend vs. the serial path.

The ``distributed`` execution backend fans shard specs out over a localhost
TCP work queue (``repro.dispatch``) with lease timeouts, retry/backoff and
inline graceful degradation; every shard rebuilds its components from the
config and derived seeds, so the merged result is **bitwise identical** to
the serial path.  This bench:

1. asserts bitwise parity on a metaseg workload — healthy queue *and* under
   an injected kill-one-worker fault plan (worker-loss recovery must change
   wall-clock only, never numbers) — always a hard gate;
2. times the serial and distributed paths end to end and records the
   speedup in ``benchmarks/artifacts/BENCH_distributed.json`` (and the
   committed ``benchmarks/trajectory`` copy in full mode).

The speedup gate (>= 2x at 4 workers, enforced through the exit code) only
engages when the machine actually has at least as many CPU cores as
workers: a socket work queue cannot beat serial execution on a single-core
container, and pretending otherwise would just teach people to ignore the
gate.  Whether the gate was enforced or skipped — and why — is recorded in
the artifact.

Invocation:

    PYTHONPATH=src:benchmarks python benchmarks/bench_distributed.py          # full, 4 workers
    PYTHONPATH=src:benchmarks python benchmarks/bench_distributed.py --smoke  # CI, 2 workers
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List

from _bench_common import (
    scaled,
    write_artifact,
    write_bench_json,
    write_trajectory_json,
)

from repro.api.config import (
    DataConfig,
    EvalConfig,
    ExecutionConfig,
    ExperimentConfig,
)
from repro.api.runner import ExperimentReport, Runner
from repro.dispatch import FAULTS_ENV, FaultPlan

#: Required speedup of the distributed path at the full worker count.
MIN_SPEEDUP = 2.0

#: Worker counts per mode.
FULL_WORKERS = 4
SMOKE_WORKERS = 2


def make_config(smoke: bool, execution: ExecutionConfig) -> ExperimentConfig:
    """An extraction-dominated metaseg workload (the protocol stays tiny)."""
    n_val = 8 if smoke else scaled(24)
    height, width = (64, 128) if smoke else (96, 192)
    return ExperimentConfig(
        kind="metaseg",
        name="distributed-dispatch",
        seed=0,
        data=DataConfig(dataset="cityscapes_like", n_val=n_val, height=height, width=width),
        evaluation=EvalConfig(n_runs=1),
        execution=execution,
    )


def check_parity(serial: ExperimentReport, other: ExperimentReport, label: str) -> None:
    """Hard gate: tables and provenance must be bitwise equal to serial."""
    assert other.tables == serial.tables, f"{label}: tables differ from serial"
    assert other.provenance == serial.provenance, (
        f"{label}: provenance differs from serial"
    )


def run_with_faults(runner: Runner, config: ExperimentConfig, plan: FaultPlan):
    """One run with the fault plan in the environment (restored after)."""
    previous = os.environ.get(FAULTS_ENV)
    os.environ[FAULTS_ENV] = plan.to_json()
    try:
        return runner.run(config)
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = previous


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(smoke: bool = False) -> dict:
    workers = SMOKE_WORKERS if smoke else FULL_WORKERS
    runner = Runner()
    serial_config = make_config(smoke, ExecutionConfig(backend="serial"))
    distributed_config = make_config(
        smoke, ExecutionConfig(backend="distributed", workers=workers, backoff=0.01)
    )

    # Parity first (also warms every path before the timing runs).
    serial_report = runner.run(serial_config)
    healthy_report = runner.run(distributed_config)
    check_parity(serial_report, healthy_report, f"distributed@{workers}")
    healthy_stats = dict(healthy_report.cache.get("dispatch", {}))
    assert healthy_stats.get("quarantined", 0) == 0, (
        f"healthy run quarantined a shard: {healthy_stats}"
    )

    # Fault-recovery gate: kill whichever worker leases shard 0 on its first
    # attempt; the run must recover (one retry) with the serial numbers.
    kill_plan = FaultPlan([{"task": 0, "attempt": 0, "action": "kill"}])
    faulted_report = run_with_faults(runner, distributed_config, kill_plan)
    check_parity(faulted_report, serial_report, "distributed+kill-one")
    faulted_stats = dict(faulted_report.cache.get("dispatch", {}))
    assert faulted_stats.get("worker_lost") == 1, (
        f"kill-one plan did not register a worker loss: {faulted_stats}"
    )
    assert faulted_stats.get("retries") == 1, (
        f"kill-one plan expected exactly one retry: {faulted_stats}"
    )

    repeats = 2 if smoke else 3
    serial_seconds = best_of(lambda: runner.run(serial_config), repeats)
    distributed_seconds = best_of(lambda: runner.run(distributed_config), repeats)
    speedup = serial_seconds / distributed_seconds

    n_cpus = os.cpu_count() or 1
    if smoke:
        gate = "skipped (smoke mode: parity + fault recovery only)"
        enforce_speedup = False
    elif n_cpus < workers:
        gate = f"skipped ({n_cpus} CPU core(s) < {workers} workers)"
        enforce_speedup = False
    else:
        gate = f"enforced (>= {MIN_SPEEDUP:.1f}x)"
        enforce_speedup = True

    config = serial_config
    payload = {
        "mode": "smoke" if smoke else "full",
        "min_speedup": MIN_SPEEDUP,
        "n_cpus": n_cpus,
        "speedup_gate": gate,
        "cases": [
            {
                "case": "metaseg_extraction",
                "workers": workers,
                "n_val": config.data.n_val,
                "height": config.data.height,
                "width": config.data.width,
                "repeats": repeats,
                "serial_seconds": serial_seconds,
                "distributed_seconds": distributed_seconds,
                "speedup": speedup,
                "parity": "bitwise (healthy + kill-one-worker vs serial)",
                "fault_recovery": {
                    "plan": kill_plan.entries,
                    "worker_lost": faulted_stats.get("worker_lost"),
                    "retries": faulted_stats.get("retries"),
                    "completed": faulted_stats.get("completed"),
                },
            }
        ],
    }
    rows = [
        f"Distributed dispatch-queue Runner backend vs serial ({config.data.n_val} images "
        f"at {config.data.height}x{config.data.width}, {workers} workers, {n_cpus} CPU core(s))",
        "  parity      healthy queue bitwise-equal to serial: OK",
        "  fault       kill-one-worker recovers bitwise (1 loss, 1 retry): OK",
        f"  serial      {serial_seconds * 1e3:8.1f} ms",
        f"  distributed {distributed_seconds * 1e3:8.1f} ms",
        f"  speedup     {speedup:6.2f}x  (gate: {gate})",
    ]
    write_artifact("distributed", rows)
    write_bench_json("distributed", payload)
    if not smoke:
        write_trajectory_json("distributed", payload)
    payload["enforce_speedup"] = enforce_speedup
    return payload


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload at 2 workers; parity + fault gates only (CI)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)  # parity/fault asserts are the hard gate
    speedup = payload["cases"][0]["speedup"]
    if payload["enforce_speedup"] and speedup < MIN_SPEEDUP:
        print(
            f"FAIL: distributed speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP:.1f}x gate on {payload['n_cpus']} CPU cores",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
